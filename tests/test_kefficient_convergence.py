"""Tests for the k-efficiency spectrum protocol and convergence stats."""

import pytest

from repro.analysis import (
    compare_schedulers,
    conflict_decay_timeline,
    run_convergence_study,
)
from repro.core import CentralScheduler, Simulator, SynchronousScheduler
from repro.graphs import clique, random_connected, ring
from repro.predicates import conflict_count
from repro.protocols import ColoringProtocol, WindowColoringProtocol


class TestWindowColoring:
    @pytest.mark.parametrize("k", [1, 2, 3, 10])
    def test_stabilizes_for_every_k(self, k):
        net = random_connected(14, 0.3, seed=3)
        proto = WindowColoringProtocol.for_network(net, k)
        sim = Simulator(proto, net, seed=5)
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.stabilized

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_exactly_k_efficient(self, k):
        net = clique(6)  # degree 5 ≥ k everywhere
        proto = WindowColoringProtocol.for_network(net, k)
        sim = Simulator(proto, net, seed=5)
        sim.run_until_silent(max_rounds=50_000)
        sim.run_rounds(5)
        assert sim.metrics.observed_k_efficiency() == k

    def test_k_clamped_by_degree(self):
        net = ring(8)  # degree 2
        proto = WindowColoringProtocol.for_network(net, 10)
        sim = Simulator(proto, net, seed=5)
        sim.run_until_silent(max_rounds=50_000)
        assert sim.metrics.observed_k_efficiency() <= 2

    def test_k_at_least_one(self):
        with pytest.raises(ValueError):
            WindowColoringProtocol(palette_size=3, k=0)

    def test_name_encodes_k(self):
        assert WindowColoringProtocol(3, 2).name == "COLORING-k2"


class TestConvergenceStudy:
    def test_study_statistics_consistent(self):
        net = ring(10)
        study = run_convergence_study(
            lambda: ColoringProtocol.for_network(net), net, seeds=range(10)
        )
        assert len(study.rounds) == 10
        assert study.percentile(0.0) == min(study.rounds)
        assert study.percentile(1.0) == study.max_rounds
        assert study.percentile(0.5) == pytest.approx(study.median_rounds)
        assert min(study.rounds) <= study.mean_rounds <= study.max_rounds

    def test_empty_study_raises(self):
        from repro.analysis import ConvergenceStudy

        with pytest.raises(ValueError):
            ConvergenceStudy("x", 1).percentile(0.5)

    def test_conflict_decay_ends_at_zero(self):
        """Lemma 2's potential: the Conflit series ends at 0 at silence."""
        net = random_connected(12, 0.3, seed=8)
        series = conflict_decay_timeline(
            ColoringProtocol.for_network(net),
            net,
            potential=conflict_count,
            seed=3,
        )
        assert series[-1] == 0

    def test_compare_schedulers_returns_study_per_daemon(self):
        net = ring(8)
        results = compare_schedulers(
            lambda: ColoringProtocol.for_network(net),
            net,
            {
                "synchronous": SynchronousScheduler,
                "central": CentralScheduler,
            },
            seeds=range(4),
        )
        assert set(results) == {"synchronous", "central"}
        for study in results.values():
            assert len(study.rounds) == 4
