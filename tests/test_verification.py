"""Tests for the exhaustive small-model verifier."""

import pytest

from repro.analysis import matching_round_bound, mis_round_bound
from repro.core import ConvergenceError
from repro.graphs import chain, ring, theorem1_chain
from repro.impossibility import FixedWatchColoring
from repro.protocols import ColoringProtocol, MISProtocol, MatchingProtocol
from repro.verification import (
    enumerate_configurations,
    exact_worst_case_rounds,
    verify_closure,
    verify_convergence_round_robin,
)


class TestEnumeration:
    def test_counts_full_product(self):
        net = chain(3)
        proto = ColoringProtocol.for_network(net)
        # colors 3^3 × cur (1 × 2 × 1) = 54 configurations.
        assert sum(1 for _ in enumerate_configurations(proto, net)) == 54

    def test_constants_pinned(self):
        net = chain(2)
        proto = MISProtocol(net, {0: 1, 1: 2})
        for config in enumerate_configurations(proto, net):
            assert config.get(0, "C") == 1
            assert config.get(1, "C") == 2

    def test_budget_guard(self):
        net = ring(12)
        proto = ColoringProtocol.for_network(net)
        with pytest.raises(ConvergenceError):
            list(enumerate_configurations(proto, net, max_configs=100))


class TestClosure:
    def test_coloring_closure_lemma1(self):
        """Lemma 1, verified exhaustively: COLORING never breaks a
        proper coloring."""
        net = chain(3)
        report = verify_closure(ColoringProtocol.for_network(net), net)
        assert report.holds
        assert report.legitimate_configs == 24  # 12 proper × 2 cur states

    def test_mis_predicate_not_closed_midflight(self):
        """The MIS predicate is NOT closed for protocol MIS: a
        legitimate-but-not-silent configuration (a dominated process
        pointing at a dominated neighbor) steps out of legitimacy before
        re-converging.  The paper only claims silent ⇒ legitimate
        (Lemma 3); this verifies our implementation honestly reflects
        that distinction."""
        net = chain(3)
        report = verify_closure(MISProtocol(net, {0: 1, 1: 2, 2: 1}), net)
        assert not report.holds

    def test_strawman_closure(self):
        """The fixed-watch strawman never recolors a properly colored
        network either — its failure is liveness, not closure."""
        net = theorem1_chain()
        report = verify_closure(FixedWatchColoring(palette_size=3), net)
        assert report.holds


class TestConvergence:
    def test_coloring_converges_from_everywhere(self):
        net = chain(3)
        report = verify_convergence_round_robin(
            ColoringProtocol.for_network(net), net
        )
        assert report.all_converged
        assert report.configs_checked == 54
        assert report.worst_steps >= 1

    def test_mis_converges_from_everywhere(self):
        net = chain(3)
        report = verify_convergence_round_robin(
            MISProtocol(net, {0: 1, 1: 2, 2: 1}), net
        )
        assert report.all_converged

    def test_matching_converges_from_everywhere(self):
        net = chain(3)
        report = verify_convergence_round_robin(
            MatchingProtocol(net, {0: 1, 1: 2, 2: 1}), net
        )
        assert report.all_converged

    def test_strawman_does_not_converge_on_adversarial_ports(self):
        """The exhaustive checker finds Theorem 1's deadlock on its own:
        with the 3–4 edge unwatched, some configuration never reaches a
        legitimate silent state (it is silent but monochromatic)."""
        net = theorem1_chain().with_ports({3: [2, 4], 4: [5, 3]})
        proto = FixedWatchColoring(palette_size=3)
        # Every start reaches *silence* (the strawman always deadlocks
        # into some silent configuration)...
        report = verify_convergence_round_robin(proto, net)
        assert report.all_converged
        # ...but not every silent endpoint is legitimate: exhibit one.
        from repro.impossibility import build_trap_configuration
        from repro.core import is_silent

        trap = build_trap_configuration(proto, net, (3, 4))
        assert is_silent(proto, net, trap)
        assert not proto.is_legitimate(net, trap)


class TestExactWorstCase:
    def test_mis_exact_worst_case_within_lemma4(self):
        net = chain(3)
        colors = {0: 1, 1: 2, 2: 1}
        exact = exact_worst_case_rounds(MISProtocol(net, colors), net)
        assert exact <= mis_round_bound(net, colors)

    def test_matching_exact_worst_case_within_lemma9(self):
        net = chain(3)
        exact = exact_worst_case_rounds(
            MatchingProtocol(net, {0: 1, 1: 2, 2: 1}), net
        )
        assert exact <= matching_round_bound(net)

    def test_bound_gap_is_visible(self):
        """The exact worst case is far below the lemma bounds on tiny
        instances — the bounds are safe, not tight, exactly as the
        paper's analysis suggests."""
        net = chain(3)
        colors = {0: 1, 1: 2, 2: 1}
        exact = exact_worst_case_rounds(MISProtocol(net, colors), net)
        assert exact < mis_round_bound(net, colors)
