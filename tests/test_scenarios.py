"""The scenario subsystem: DSL, runtime, churn, spec/campaign threading.

Covers the PR's acceptance surface:

* a **no-op scenario reproduces byte-identical JSONL traces** (the named
  RNG streams keep scenario draws off the scheduler/protocol stream);
* scenarios **round-trip through JSON and ExperimentSpec**, and run
  identically under serial and pooled campaign execution (resume
  included);
* **churn on the incremental engine yields enabled sets byte-identical
  to the scan engine** across protocols × schedulers × seeds, and the
  self-auditing debug engine accepts scenario events;
* fault injectors return full :class:`~repro.faults.FaultReport`\\ s and
  the trace records them.
"""

import json
import random

import pytest

from repro.api import Campaign, ExperimentSpec
from repro.core import (
    RngStreams,
    Simulator,
    Trace,
    TraceRecorder,
    derive_seed,
)
from repro.core.exceptions import TopologyError
from repro.faults import FaultReport, corrupt_fraction, measure_recovery
from repro.graphs import (
    grid,
    missing_edges,
    non_bridge_edges,
    removable_nodes,
    ring,
)
from repro.protocols import ColoringProtocol
from repro.scenarios import (
    AtRound,
    Churn,
    CorruptFraction,
    Scenario,
    ScenarioEvent,
    SwapScheduler,
    at_round,
    at_step,
    after_silence,
    build_scenario,
    every_rounds,
    scenario_registry,
    with_probability,
)
from repro.api import protocol_registry, scheduler_registry, topology_registry

PROTOCOLS = ("coloring", "mis", "matching")
SCHEDULERS = (
    ("synchronous", {}),
    ("central", {}),
    ("random-subset", {"p_act": 0.4}),
    ("central", {"enabled_only": True}),
)
SEEDS = (0, 7)


def build_sim(protocol="coloring", topology=("ring", {"n": 12}), scheduler=("synchronous", {}),
              seed=0, engine="incremental", scenario=None, **kwargs):
    topo_name, topo_params = topology
    sched_name, sched_params = scheduler
    net = topology_registry.build(topo_name, **topo_params)
    return Simulator(
        protocol_registry.build(protocol, net),
        net,
        scheduler=scheduler_registry.build(sched_name, net, **sched_params),
        seed=seed,
        engine=engine,
        scenario=scenario,
        protocol_factory=lambda n: protocol_registry.build(protocol, n),
        **kwargs,
    )


# ----------------------------------------------------------------------
# Named RNG streams
# ----------------------------------------------------------------------
class TestRngStreams:
    def test_scheduler_and_protocol_share_the_historical_root(self):
        streams = RngStreams(42)
        assert streams.scheduler is streams.root
        assert streams.protocol is streams.root
        # the root is seeded exactly like the old single run RNG
        assert streams.root.random() == random.Random(42).random()

    def test_scenario_stream_is_independent_of_the_root(self):
        a, b = RngStreams(42), RngStreams(42)
        root_before = [a.root.random() for _ in range(5)]
        # interleave scenario draws on b — the root sequence must not move
        drawn = []
        for _ in range(5):
            b.scenario.random()
            drawn.append(b.root.random())
        assert drawn == root_before

    def test_named_streams_are_distinct_and_reproducible(self):
        s = RngStreams(7)
        assert s.stream("scenario") is s.scenario
        assert s.stream("scenario") is not s.stream("other")
        assert derive_seed(7, "scenario") != derive_seed(7, "other")
        assert derive_seed(7, "scenario") == derive_seed(7, "scenario")
        assert RngStreams(7).scenario.random() == RngStreams(7).scenario.random()


# ----------------------------------------------------------------------
# Satellite: no-op scenario == scenario-free run, byte for byte
# ----------------------------------------------------------------------
class TestNoopByteIdentity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("scheduler,sched_params", SCHEDULERS)
    def test_noop_scenario_traces_byte_identical(self, protocol, scheduler,
                                                 sched_params):
        for seed in SEEDS:
            jsonls = []
            for scenario in (None, build_scenario("noop")):
                sim = build_sim(protocol, scheduler=(scheduler, sched_params),
                                seed=seed, scenario=scenario)
                recorder = TraceRecorder(sim, seed=seed)
                recorder.run_steps(25)
                jsonls.append(recorder.trace.to_jsonl())
            assert jsonls[0] == jsonls[1], (protocol, scheduler, seed)

    def test_probabilistic_scenario_keeps_scheduler_sequence(self):
        """Even a firing scenario must not move the scheduler's draws:
        the activation sets of a random-subset run are unchanged when a
        probabilistic corruption scenario rides along."""
        activations = []
        scenario = Scenario("chaos", events=(
            ScenarioEvent(with_probability(0.5, per="step"),
                          CorruptFraction(0.2, ("internal",))),
        ), track_recovery=False)
        for sc in (None, scenario):
            sim = build_sim("mis", scheduler=("random-subset", {"p_act": 0.5}),
                            seed=3, scenario=sc)
            activations.append(
                [sim.step().activated for _ in range(30)]
            )
        assert activations[0] == activations[1]


# ----------------------------------------------------------------------
# DSL triggers
# ----------------------------------------------------------------------
class TestTriggers:
    def test_at_step_fires_once_at_its_boundary(self):
        scenario = Scenario("s", (ScenarioEvent(at_step(3),
                                                CorruptFraction(0.5)),))
        sim = build_sim(scenario=scenario)
        sim.run_steps(10)
        assert len(sim.scenario_runtime.applied) == 1
        assert sim.scenario_runtime.applied[0].step == 3
        assert sim.scenario_runtime.exhausted

    def test_every_rounds_fires_periodically(self):
        scenario = Scenario("s", (ScenarioEvent(every_rounds(2),
                                                CorruptFraction(0.3)),),
                            track_recovery=False)
        sim = build_sim(scenario=scenario)  # synchronous: 1 round/step
        sim.run_rounds(9)
        fired_at = [a.round for a in sim.scenario_runtime.applied]
        assert fired_at == [2, 4, 6, 8]
        assert not sim.scenario_runtime.exhausted

    def test_after_silence_fires_at_first_silent_boundary(self):
        scenario = Scenario("s", (ScenarioEvent(after_silence(),
                                                CorruptFraction(1.0)),))
        sim = build_sim("mis", seed=2, scenario=scenario)
        sim.run_until_silent()
        assert not sim.scenario_runtime.applied  # not fired yet
        while not sim.scenario_runtime.exhausted:
            sim.run_rounds(1)
        assert len(sim.scenario_runtime.applied) == 1
        # the fault disturbed the silent configuration
        assert sim.scenario_runtime.silence_recoveries or not sim.is_silent()

    def test_with_probability_validates(self):
        with pytest.raises(ValueError):
            with_probability(1.5)
        with pytest.raises(ValueError):
            with_probability(0.5, per="nope")

    def test_scenario_round_trip(self):
        scenario = Scenario(
            "mix",
            events=(
                ScenarioEvent(at_step(5), CorruptFraction(0.25, ("comm",))),
                ScenarioEvent(every_rounds(3, start=6), Churn("add-edge")),
                ScenarioEvent(at_round(9), SwapScheduler("central",
                                                         {"enabled_only": True})),
                ScenarioEvent(with_probability(0.1), CorruptFraction(0.1)),
                ScenarioEvent(after_silence(), CorruptFraction(0.9)),
            ),
            horizon_rounds=50,
            track_availability=True,
        )
        assert Scenario.from_json(scenario.to_json()) == scenario
        # and the registry's generic "script" scenario accepts the raw DSL
        rebuilt = scenario_registry.build(
            "script",
            events=[e.to_dict() for e in scenario.events],
            horizon_rounds=50,
            track_availability=True,
            scenario_name="mix",
        )
        assert rebuilt == scenario


# ----------------------------------------------------------------------
# Satellite: FaultReport auditability
# ----------------------------------------------------------------------
class TestFaultReports:
    def test_corrupt_fraction_reports_victims_and_kinds(self):
        sim = build_sim(seed=1)
        report = corrupt_fraction(sim, 0.5, random.Random(9), kinds=("comm",))
        assert isinstance(report, FaultReport)
        assert report.kind == "corrupt"
        assert len(report) == 6 and len(list(report)) == 6
        assert report.kinds == ("comm",)
        assert all(vars == ("C",) for vars in report.vars_written.values())
        assert sim.fault_log[-1] is report
        assert sim.metrics.faults_injected == 1
        assert sim.metrics.fault_victims == 6

    def test_faults_land_in_the_trace(self):
        scenario = Scenario("s", (ScenarioEvent(at_step(2),
                                                CorruptFraction(0.5, ("comm",))),))
        sim = build_sim("mis", seed=4, scenario=scenario)
        recorder = TraceRecorder(sim, seed=4)
        recorder.run_steps(6)
        trace = recorder.trace
        assert len(trace.faults) == 1
        fault = trace.faults[0]
        assert fault.step == 2 and fault.kind == "corrupt"
        assert fault.kinds == ("comm",)
        # the audit line round-trips through JSONL
        replayed = Trace.from_jsonl(trace.to_jsonl())
        assert replayed.faults == trace.faults
        assert replayed.events == trace.events
        # and sits before the step it preceded
        lines = trace.to_jsonl().splitlines()
        fault_pos = next(i for i, l in enumerate(lines) if '"fault"' in l)
        assert json.loads(lines[fault_pos + 1])["step"] == 2


# ----------------------------------------------------------------------
# Topology mutation
# ----------------------------------------------------------------------
class TestNetworkMutation:
    def test_edge_add_remove_round_trip_keeps_ports_stable(self):
        net = ring(6)
        grown = net.with_edge_added(0, 3)
        assert grown.are_neighbors(0, 3)
        assert grown.degree(0) == 3
        # untouched processes keep their exact port order
        assert grown.neighbors(1) == net.neighbors(1)
        # the new neighbor sits behind the highest port
        assert grown.neighbor_at(0, 3) == 3
        back = grown.with_edge_removed(0, 3)
        assert back.neighbors(0) == net.neighbors(0)

    def test_edge_removal_refuses_to_disconnect(self):
        net = topology_registry.build("chain", n=4)
        with pytest.raises(TopologyError):
            net.with_edge_removed(1, 2)

    def test_node_add_and_remove(self):
        net = ring(5)
        grown = net.with_node_added("joiner", [0, 2])
        assert grown.n == 6 and grown.degree("joiner") == 2
        assert grown.neighbor_at(0, grown.degree(0)) == "joiner"
        shrunk = grown.with_node_removed("joiner")
        assert shrunk.n == 5 and "joiner" not in shrunk
        with pytest.raises(TopologyError):
            net.with_node_removed("ghost")

    def test_safe_candidate_helpers(self):
        chain_net = topology_registry.build("chain", n=5)
        assert non_bridge_edges(chain_net) == []  # every chain edge is a bridge
        ring_net = ring(6)
        assert len(non_bridge_edges(ring_net)) == 6
        # chain interior nodes are cut vertices; only the two ends move
        assert removable_nodes(chain_net) == [0, 4]
        assert removable_nodes(ring_net, min_n=6) == []
        assert (0, 2) in missing_edges(ring_net)
        assert len(missing_edges(ring_net, limit=3)) == 3

    def test_rebind_network_migrates_states_and_constants(self):
        sim = build_sim("mis", topology=("gnp", {"n": 12, "p": 0.3, "seed": 1}),
                        seed=2)
        sim.run_until_silent()
        s_before = {p: sim.config.get(p, "S") for p in sim.network.processes}
        grown = sim.network.with_node_added("j", list(sim.network.processes)[:2])
        sim.rebind_network(grown)
        # the protocol was rebuilt with a proper coloring of the new net
        sim.protocol.validate_configuration(sim.network, sim.config)
        assert "j" in sim.network
        # surviving in-domain values (the MIS flags) were carried over
        carried = {p: sim.config.get(p, "S") for p in s_before}
        assert carried == s_before
        # metrics and rounds follow the new process set
        assert "j" in sim.metrics.activations
        sim.run_until_silent()
        assert sim.is_legitimate()


# ----------------------------------------------------------------------
# Acceptance: churn on incremental == scan, and the debug engine agrees
# ----------------------------------------------------------------------
CHURN_SCENARIO_PARAMS = {"period_rounds": 2, "fraction": 0.25, "min_n": 6}


class TestScenarioEngineEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("scheduler,sched_params", SCHEDULERS)
    def test_churn_enabled_sets_match_scan(self, protocol, scheduler,
                                           sched_params):
        for seed in SEEDS:
            sims = [
                build_sim(protocol, topology=("gnp", {"n": 10, "p": 0.35,
                                                      "seed": 4}),
                          scheduler=(scheduler, sched_params), seed=seed,
                          engine=engine,
                          scenario=build_scenario("churn",
                                                  CHURN_SCENARIO_PARAMS))
                for engine in ("incremental", "scan")
            ]
            # Drive until several churn periods elapsed (the central
            # daemon needs many steps per round), comparing the engines'
            # enabled sets at every single step boundary.
            step = 0
            while sims[0].round_tracker.completed_rounds < 7 and step < 600:
                enabled = [sim.enabled_processes() for sim in sims]
                assert enabled[0] == enabled[1], (protocol, scheduler, seed,
                                                  step)
                records = [sim.step() for sim in sims]
                assert records[0] == records[1]
                step += 1
            assert sims[0].config == sims[1].config
            # churn actually happened and both runs saw the same events
            applied = [
                [(a.step, a.description) for a in sim.scenario_runtime.applied]
                for sim in sims
            ]
            assert applied[0] and applied[0] == applied[1]

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_debug_engine_audits_scenario_events(self, protocol):
        """CrossCheckEngine rescans on every query; a scenario whose
        corruption/churn invalidation was too narrow would raise."""
        scenario = Scenario("stress", events=(
            ScenarioEvent(every_rounds(2), CorruptFraction(0.4)),
            ScenarioEvent(every_rounds(3), Churn("add-edge")),
            ScenarioEvent(every_rounds(5), Churn("remove-edge")),
        ), track_recovery=False)
        sim = build_sim(protocol, topology=("gnp", {"n": 9, "p": 0.4,
                                                    "seed": 2}),
                        seed=5, engine="debug", scenario=scenario)
        for _ in range(30):
            sim.step()
            sim.enabled_processes()  # force the audit
        assert sim.scenario_runtime.applied

    def test_add_edge_falls_back_to_enumeration_on_dense_graphs(self):
        """Rejection sampling cannot find a missing edge of an
        almost-complete graph; the enumeration fallback must."""
        net = topology_registry.build("clique", n=6).with_edge_removed(0, 1)
        sim = Simulator(
            ColoringProtocol.for_network(net), net, seed=1,
            protocol_factory=lambda n: ColoringProtocol.for_network(n),
        )
        desc = Churn("add-edge").apply(sim, random.Random(0))
        assert desc is not None
        assert sim.network.are_neighbors(0, 1)  # the only missing edge
        # and a truly complete graph is a skipped no-op
        full = topology_registry.build("clique", n=5)
        sim2 = Simulator(
            ColoringProtocol.for_network(full), full, seed=1,
            protocol_factory=lambda n: ColoringProtocol.for_network(n),
        )
        assert Churn("add-edge").apply(sim2, random.Random(0)) is None

    def test_corruption_leaves_enabled_equal_to_fresh_scan(self):
        sim = build_sim("matching", seed=6)
        corrupt_fraction(sim, 0.5, random.Random(3))
        fresh = Simulator(
            sim.protocol, sim.network, seed=0, engine="scan",
            config=sim.config,
        )
        assert sim.enabled_processes() == fresh.enabled_processes()


# ----------------------------------------------------------------------
# Acceptance: spec / campaign threading
# ----------------------------------------------------------------------
class TestSpecThreading:
    def test_scenario_free_spec_serializes_and_keys_as_before(self):
        spec = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8}, seed=1)
        assert "scenario" not in spec.to_dict()
        legacy = {k: v for k, v in spec.to_dict().items()}
        assert ExperimentSpec.from_dict(legacy) == spec
        assert "scenario" not in spec.key()

    def test_scenario_is_a_keyed_axis(self):
        base = ExperimentSpec(protocol="mis", topology="ring",
                              topology_params={"n": 10}, seed=0)
        faulty = base.variant(scenario="single-fault",
                              scenario_params={"fraction": 0.5})
        assert base.key() != faulty.key()
        assert "single-fault" in faulty.key()
        assert faulty.key() != base.variant(
            scenario="single-fault", scenario_params={"fraction": 0.6}
        ).key()
        # engine stays a non-axis even with a scenario attached
        assert faulty.key() == faulty.variant(engine="scan").key()

    def test_scenario_params_require_a_scenario(self):
        with pytest.raises(ValueError, match="scenario_params"):
            ExperimentSpec(protocol="coloring", topology="ring",
                           scenario_params={"fraction": 0.5})

    def test_spec_round_trip_with_scenario(self):
        spec = ExperimentSpec(
            protocol="matching", topology="grid",
            topology_params={"rows": 3, "cols": 3},
            scenario="script",
            scenario_params={"events": [
                {"trigger": {"kind": "at-round", "round": 4},
                 "effect": {"kind": "corrupt-fraction", "fraction": 0.5,
                            "kinds": ["comm"]}},
            ]},
            seed=3,
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        result, clone_result = spec.run(), clone.run()
        assert result == clone_result
        assert result.faults_injected == 1

    def test_campaign_serial_pool_and_resume_agree(self, tmp_path):
        campaign = Campaign.grid(
            protocols=["coloring", "mis"],
            topologies=[("ring", {"n": 8})],
            schedulers=["synchronous"],
            seeds=range(2),
            scenario="single-fault",
            scenario_params={"fraction": 0.5},
        )
        serial = campaign.run()
        pooled = campaign.run(jsonl_path=tmp_path / "sink.jsonl", workers=2)
        assert serial.results == pooled.results
        assert all(r.faults_injected == 1 for r in serial.results)
        resumed = campaign.run(jsonl_path=tmp_path / "sink.jsonl")
        assert resumed.skipped == len(campaign) and resumed.executed == 0
        assert resumed.results == serial.results

    def test_trialresult_loads_pre_scenario_rows(self):
        row = {
            "protocol": "COLORING", "scheduler": "synchronous", "n": 8,
            "m": 8, "delta": 2, "seed": 0, "steps": 5, "rounds": 5,
            "k_efficiency": 1, "max_bits_per_step": 2.0, "total_bits": 10.0,
            "legitimate": True, "silent": True,
        }
        from repro.experiments.runner import TrialResult

        result = TrialResult.from_dict(row)
        assert result.faults_injected == 0
        assert result.availability == 1.0
        with pytest.raises(KeyError):
            TrialResult.from_dict({k: v for k, v in row.items()
                                   if k != "protocol"})

    def test_imperative_churn_needs_protocol_factory(self):
        net = ring(8)
        sim = Simulator(ColoringProtocol.for_network(net), net, seed=1)
        with pytest.raises(ValueError, match="protocol_factory"):
            sim.rebind_network(net.with_edge_added(0, 4))


# ----------------------------------------------------------------------
# Canned scenarios and measures
# ----------------------------------------------------------------------
class TestCannedScenarios:
    def test_registry_lists_the_canned_set(self):
        assert {"noop", "single-fault", "periodic-faults",
                "adversarial-reset", "churn", "scheduler-swap",
                "script"} <= set(scenario_registry.names())

    def test_single_fault_measures_recovery(self):
        result = ExperimentSpec(
            protocol="mis", topology="gnp",
            topology_params={"n": 14, "p": 0.3, "seed": 2}, seed=1,
            scenario="single-fault", scenario_params={"fraction": 1.0},
        ).run()
        assert result.silent and result.legitimate
        assert result.faults_injected == 1
        assert result.mean_recovery_rounds > 0
        assert result.post_fault_bits > 0

    def test_periodic_faults_track_availability(self):
        result = ExperimentSpec(
            protocol="coloring", topology="grid",
            topology_params={"rows": 3, "cols": 3}, seed=5,
            scenario="periodic-faults",
            scenario_params={"period_rounds": 5, "fraction": 0.3,
                             "total_rounds": 40},
        ).run()
        assert result.faults_injected >= 7
        assert 0.0 < result.availability < 1.0

    def test_adversarial_reset_after_silence(self):
        result = ExperimentSpec(
            protocol="mis", topology="ring", topology_params={"n": 10},
            seed=2, scenario="adversarial-reset",
            scenario_params={"state": {"S": "Dominator", "cur": 1},
                             "after_silence": True},
        ).run()
        assert result.silent and result.legitimate
        assert result.faults_injected == 1

    def test_scheduler_swap_switches_daemon(self):
        scenario = build_scenario("scheduler-swap", {
            "scheduler": "central", "params": {"enabled_only": True},
            "at_round": 2,
        })
        sim = build_sim("matching", seed=3, scenario=scenario)
        assert sim.scheduler.name == "synchronous"
        sim.run_rounds(4)
        assert sim.scheduler.name == "central"
        assert sim.scheduler.draws_from == "enabled"
        sim.run_until_silent()
        assert sim.is_legitimate()

    def test_measure_recovery_reports_post_fault_bits(self):
        net = grid(3, 3)
        sim = Simulator(ColoringProtocol.for_network(net), net, seed=2)
        report = measure_recovery(
            sim, lambda s, r: corrupt_fraction(s, 1.0, r), random.Random(1)
        )
        assert report.disturbed
        assert report.victims == 9
        assert report.rounds_to_recover > 0
        assert report.post_fault_bits > 0

    def test_metrics_off_tier_skips_scenario_measures(self):
        scenario = build_scenario("single-fault",
                                  {"fraction": 0.5, "at_round": 1})
        sim = build_sim("mis", seed=1, metrics="off", scenario=scenario)
        sim.run_rounds(6)
        assert sim.scenario_runtime.applied  # events still fire
        assert sim.metrics.faults_injected == 0  # but nothing streams
