"""Tests for the telemetry spine (repro.obs) and its surfaces.

The two contracts everything else hangs off:

* telemetry is *inert*: with the registry on or off, simulation traces
  are byte-identical (3 protocols × 2 daemons) — recording never
  touches state or RNG streams;
* telemetry is *live*: a running fabric campaign shows up mid-flight
  on the service's ``/progress`` (heartbeat fan-in, trial deltas) and
  ``/metrics`` (Prometheus text) endpoints, and ``repro top`` renders
  it.

Plus the satellites that ride along: CSV content negotiation shared
with ``repro query --csv``, ``--profile`` on campaign and fabric
workers, heartbeat cleanup on clean finishes, and the warehouse's
telemetry table.
"""

import csv
import io
import json
import os
import threading
import time
import urllib.request

import pytest

from repro.api import Campaign, ExperimentSpec
from repro.cli import main
from repro.core.trace import record_run
from repro.fabric import ResultService, build_plan, run_fabric
from repro.fabric.worker import run_worker_file
from repro.obs import prom
from repro.obs.progress import (
    ProgressTracker,
    fabric_summary,
    heartbeat_rows,
)
from repro.obs.registry import DEFAULT_BUCKETS, TELEMETRY, Telemetry
from repro.obs.top import render_top, top_frame
from repro import protocol_registry, ring, scheduler_registry
from repro.results import ResultStore

PROTOCOLS = ("coloring", "mis", "matching")
DAEMONS = ("synchronous", "central")


@pytest.fixture(autouse=True)
def obs_clean():
    """Every test starts and ends with a disabled, empty registry."""
    was = TELEMETRY.enabled
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.enabled = was
    TELEMETRY.reset()


def small_grid(seeds=4, n=6):
    return Campaign.grid(
        protocols=["coloring"],
        topologies=[("ring", {"n": n})],
        schedulers=["synchronous"],
        seeds=range(seeds),
    )


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram(self):
        t = Telemetry(enabled=True)
        t.counter("a").inc()
        t.counter("a").inc(4)
        t.gauge("g").set(2.5)
        t.gauge("g").inc()
        h = t.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = t.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 3.5
        assert snap["histograms"]["h"]["counts"] == [1, 1, 1]
        assert snap["histograms"]["h"]["sum"] == pytest.approx(55.5)
        json.dumps(snap)  # JSON-clean by contract

    def test_handles_are_stable(self):
        t = Telemetry()
        assert t.counter("x") is t.counter("x")
        assert t.counter("x", shard=1) is t.counter("x", shard=1)
        assert t.counter("x", shard=1) is not t.counter("x", shard=2)

    def test_labels_fold_into_snapshot_keys(self):
        t = Telemetry(enabled=True)
        t.counter("req", endpoint="/query").inc()
        assert t.snapshot()["counters"] == {"req{endpoint=/query}": 1}

    def test_histogram_bucket_edges(self):
        t = Telemetry()
        h = t.histogram("h", buckets=(1.0,))
        h.observe(1.0)  # on the bound -> first bucket (le is inclusive)
        h.observe(1.0001)
        assert h.counts == [1, 1]

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_reset_drops_everything(self):
        t = Telemetry(enabled=True)
        t.counter("a").inc()
        with t.span("s"):
            pass
        t.reset()
        assert t.snapshot()["counters"] == {}
        assert t.spans() == []


class TestSpans:
    def test_span_records_wall_time_and_fields(self):
        t = Telemetry(enabled=True)
        with t.span("op", n=3) as span:
            span.note(steps=7)
        records = t.spans()
        assert len(records) == 1
        rec = records[0]
        assert rec["name"] == "op" and rec["n"] == 3 and rec["steps"] == 7
        assert rec["wall_s"] >= 0.0 and rec["t"] > 0

    def test_disabled_span_is_shared_noop(self):
        t = Telemetry(enabled=False)
        assert t.span("op") is t.span("other")
        with t.span("op"):
            pass
        assert t.spans() == []
        t.record_span("op", 0.5)
        assert t.spans() == []

    def test_ring_is_bounded(self):
        t = Telemetry(enabled=True, span_capacity=4)
        for i in range(10):
            t.record_span("op", 0.0, i=i)
        records = t.spans()
        assert [r["i"] for r in records] == [6, 7, 8, 9]

    def test_export_jsonl(self, tmp_path):
        t = Telemetry(enabled=True)
        t.record_span("a", 0.25, n=2)
        path = tmp_path / "spans.jsonl"
        assert t.export_spans_jsonl(str(path)) == 1
        rec = json.loads(path.read_text().strip())
        assert rec["name"] == "a" and rec["wall_s"] == 0.25 and rec["n"] == 2


class TestPrometheus:
    def test_exposition_format(self):
        t = Telemetry(enabled=True)
        t.counter("sim.steps").inc(12)
        t.gauge("engine.enabled_set").set(7)
        h = t.histogram("trial.wall_s", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = prom.render_prometheus(t)
        assert "# TYPE repro_sim_steps_total counter" in text
        assert "repro_sim_steps_total 12" in text
        assert "repro_engine_enabled_set 7" in text
        # cumulative buckets, +Inf closes the histogram
        assert 'repro_trial_wall_s_bucket{le="0.1"} 1' in text
        assert 'repro_trial_wall_s_bucket{le="1"} 2' in text
        assert 'repro_trial_wall_s_bucket{le="+Inf"} 3' in text
        assert "repro_trial_wall_s_count 3" in text
        assert text.endswith("\n")

    def test_labels_render(self):
        t = Telemetry(enabled=True)
        t.counter("service.requests", endpoint="/query").inc()
        text = prom.render_prometheus(t)
        assert ('repro_service_requests_total{endpoint="/query"} 1'
                in text)

    def test_metric_name_sanitized(self):
        assert prom.metric_name("engine.run_steps") == "repro_engine_run_steps"
        assert prom.metric_name("a-b c") == "repro_a_b_c"


# ----------------------------------------------------------------------
# The inertness contract: telemetry never changes an execution
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("daemon", DAEMONS)
    def test_traces_identical_on_or_off(self, protocol, daemon):
        def trace_jsonl():
            network = ring(9)
            proto = protocol_registry.build(protocol, network)
            sched = scheduler_registry.build(daemon, network)
            return record_run(proto, network, seed=11, steps=30,
                              scheduler=sched).to_jsonl()

        TELEMETRY.disable()
        off = trace_jsonl()
        TELEMETRY.enable()
        on = trace_jsonl()
        assert on == off, "telemetry must never perturb an execution"

    @pytest.mark.parametrize("engine", ["incremental", "batch",
                                        "batch-resident"])
    def test_trial_results_identical_on_or_off(self, engine):
        spec = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 16}, seed=3,
                              engine=engine)
        TELEMETRY.disable()
        off = spec.run().to_dict()
        TELEMETRY.enable()
        on = spec.run().to_dict()
        assert on == off


# ----------------------------------------------------------------------
# Instrumented layers actually record
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_trial_execution_counts(self):
        TELEMETRY.enable()
        spec = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8}, seed=0)
        result = spec.run()
        snap = TELEMETRY.snapshot()
        assert snap["counters"]["trial.executed"] == 1
        assert snap["counters"]["sim.steps"] == result.steps
        assert snap["counters"]["sim.activations"] >= result.steps
        assert snap["histograms"]["trial.wall_s"]["count"] == 1
        names = [r["name"] for r in TELEMETRY.spans()]
        assert "trial.execute" in names

    def test_resident_run_records_fused_spans(self):
        TELEMETRY.enable()
        sim = ExperimentSpec(protocol="coloring", topology="ring",
                             topology_params={"n": 32}, seed=1,
                             engine="batch-resident",
                             metrics="aggregate").build_simulator()
        sim.run_resident(steps=10)
        snap = TELEMETRY.snapshot()
        assert snap["counters"]["sim.steps"] == 10
        spans = [r for r in TELEMETRY.spans()
                 if r["name"] == "engine.run_steps"]
        assert spans and spans[-1]["steps"] == 10
        assert snap["histograms"]["engine.fused_span_steps"]["count"] >= 1

    def test_campaign_records_store_snapshot(self, tmp_path):
        store_path = tmp_path / "camp.sqlite"
        small_grid(seeds=3).run(out=store_path, sink="sqlite",
                                run_id="obs")
        with ResultStore(store_path, create=False) as store:
            rows = store.telemetry_snapshots("obs")
        assert len(rows) == 1
        payload = rows[0]["payload"]
        assert rows[0]["source"] == "campaign"
        assert payload["executed"] == 3 and payload["resumed"] == 0
        assert payload["wall_time_s"] > 0

    def test_telemetry_table_roundtrip_and_prune(self, tmp_path):
        path = tmp_path / "t.sqlite"
        with ResultStore(path) as store:
            store.begin_run(run_id="r1")
            store.record_telemetry("r1", {"a": 1}, source="fabric")
            store.record_telemetry("r1", {"a": 2})
            rows = store.telemetry_snapshots("r1")
            assert [r["payload"]["a"] for r in rows] == [1, 2]
            assert rows[0]["source"] == "fabric"
            assert rows[1]["source"] == "campaign"
            store.delete_run("r1")
            store.begin_run(run_id="r2")
            assert store.telemetry_snapshots("r2") == []


# ----------------------------------------------------------------------
# Progress assembly (tracker, heartbeat fan-in, top rendering)
# ----------------------------------------------------------------------
class TestProgressPieces:
    def test_tracker_deltas(self):
        tracker = ProgressTracker()
        first = tracker.update("r", 10, now=100.0)
        assert first == {"trials": 10, "interval_s": None,
                         "trials_per_s": None}
        second = tracker.update("r", 16, now=103.0)
        assert second["trials"] == 6
        assert second["trials_per_s"] == pytest.approx(2.0)

    def test_fabric_summary_eta(self):
        from repro.fabric import Heartbeat

        beats = [
            Heartbeat(shard=0, pid=1, total=50, completed=20,
                      status="running", updated_at=1000.0,
                      trials_per_s=2.0),
            Heartbeat(shard=1, pid=2, total=50, completed=50,
                      status="done", updated_at=900.0),
        ]
        rows = heartbeat_rows(beats, now=1001.0)
        assert [r["stalled"] for r in rows] == [False, False]
        summary = fabric_summary(rows)
        assert summary["completed"] == 70 and summary["total"] == 100
        assert summary["eta_s"] == pytest.approx(15.0)
        # a running worker past the stall timeout is flagged
        rows = heartbeat_rows(beats, now=1030.0, stall_timeout_s=10.0)
        assert rows[0]["stalled"] and not rows[1]["stalled"]
        assert fabric_summary(rows)["stalled"] == 1

    def test_top_frame_and_render(self, tmp_path):
        from repro.fabric import Heartbeat, write_heartbeat

        plan = tmp_path / "plan"
        plan.mkdir()
        write_heartbeat(
            str(plan / "heartbeat-0.json"),
            Heartbeat(shard=0, pid=1, total=10, completed=4,
                      status="running", updated_at=time.time(),
                      trials_per_s=2.0))
        frame = top_frame(str(plan))
        text = render_top(frame, str(plan))
        assert "shard 0" in text and "40%" in text or "4/10" in text
        assert frame["fabric"]["summary"]["workers"] == 1

    def test_cli_top_once_plan_dir(self, tmp_path, capsys):
        plan = tmp_path / "empty-plan"
        plan.mkdir()
        assert main(["top", str(plan), "--once"]) == 0
        out = capsys.readouterr().out
        assert "no live fabric heartbeats" in out

    def test_cli_top_unreachable_url(self):
        assert main(["top", "http://127.0.0.1:9", "--once"]) == 1


# ----------------------------------------------------------------------
# The service surfaces: /progress, /metrics, CSV negotiation
# ----------------------------------------------------------------------
def _get(url, accept=None):
    request = urllib.request.Request(url)
    if accept:
        request.add_header("Accept", accept)
    with urllib.request.urlopen(request) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode())


@pytest.fixture
def served_store(tmp_path):
    store_path = tmp_path / "served.sqlite"
    small_grid(seeds=5).run(out=store_path, sink="sqlite", run_id="base")
    with ResultService(str(store_path)) as service:
        yield store_path, service


class TestServiceSurfaces:
    def test_progress_store_only(self, served_store):
        _path, service = served_store
        _s, ctype, body = _get(service.url + "/progress")
        assert ctype.startswith("application/json")
        payload = json.loads(body)
        assert payload["run"] == "base" and payload["trials"] == 5
        assert payload["delta"]["trials"] == 5
        assert payload["fabric"] is None
        assert payload["telemetry"]["payload"]["executed"] == 5
        # second poll: no new trials -> zero delta, a window rate
        _s, _c, body = _get(service.url + "/progress")
        assert json.loads(body)["delta"]["trials"] == 0

    def test_metrics_exposition(self, served_store):
        _path, service = served_store
        _s, ctype, body = _get(service.url + "/metrics")
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        assert "repro_store_runs 1" in body
        assert "repro_store_trials 5" in body
        # request counters appear once the registry is on
        TELEMETRY.enable()
        _get(service.url + "/query")
        _s, _c, body = _get(service.url + "/metrics")
        assert ('repro_service_requests_total{endpoint="/query"} 1'
                in body)

    def test_query_csv_negotiation(self, served_store):
        store_path, service = served_store
        _s, ctype, body = _get(
            service.url + "/query?format=csv&metrics=rounds"
                          "&group_by=protocol")
        assert ctype.startswith("text/csv")
        rows = list(csv.reader(io.StringIO(body)))
        assert rows[0] == ["protocol", "trials", "rounds_mean",
                           "rounds_ci95", "rounds_median"]
        with ResultStore(store_path, create=False) as store:
            direct = store.query(metrics=["rounds"], group_by=["protocol"])
        assert float(rows[1][2]) == pytest.approx(
            direct[0].aggregates["rounds"].mean)
        # Accept header negotiates too, explicit param wins over it
        _s, ctype, _b = _get(service.url + "/query", accept="text/csv")
        assert ctype.startswith("text/csv")
        _s, ctype, _b = _get(service.url + "/query?format=json",
                             accept="text/csv")
        assert ctype.startswith("application/json")

    def test_runs_and_report_csv(self, served_store):
        _path, service = served_store
        _s, ctype, body = _get(service.url + "/runs?format=csv")
        assert ctype.startswith("text/csv")
        rows = list(csv.reader(io.StringIO(body)))
        assert "run_id" in rows[0] and rows[1][0] == "base"
        _s, ctype, body = _get(
            service.url + "/report?recipe=paper-overhead&format=csv")
        assert ctype.startswith("text/csv")
        header = next(csv.reader(io.StringIO(body)))
        assert header[:3] == ["protocol", "topology", "trials"]

    def test_cli_query_csv_matches_service(self, served_store, tmp_path,
                                           capsys):
        store_path, service = served_store
        _s, _c, service_body = _get(
            service.url + "/query?format=csv&metrics=rounds"
                          "&group_by=protocol")
        assert main(["query", "--store", str(store_path), "--csv",
                     "--metrics", "rounds", "--group-by", "protocol"]) == 0
        cli_body = capsys.readouterr().out
        assert cli_body == service_body


# ----------------------------------------------------------------------
# Live fabric: /progress mid-flight through a chaos-killed run
# ----------------------------------------------------------------------
class TestLiveFabric:
    def test_progress_reflects_running_fabric(self, tmp_path):
        store_path = tmp_path / "live.sqlite"
        ResultStore(str(store_path)).close()  # service needs a store file
        campaign = small_grid(seeds=60)
        outcome_box = {}

        def drive():
            outcome_box["outcome"] = run_fabric(
                campaign, str(store_path), run_id="live",
                workers=2, shards=4, chaos_kills=1,
            )

        thread = threading.Thread(target=drive)
        with ResultService(str(store_path)) as service:
            thread.start()
            fabric_samples = []
            counts = []
            while thread.is_alive():
                _s, _c, body = _get(service.url + "/progress")
                payload = json.loads(body)
                counts.append(payload["trials"])
                if payload["fabric"] is not None:
                    fabric_samples.append(payload["fabric"])
                time.sleep(0.02)
            thread.join()
            _s, _c, final = _get(service.url + "/progress")
        outcome = outcome_box["outcome"]
        assert outcome.ok and outcome.requeued >= 1
        # heartbeats were visible mid-flight (the whole point of /progress)
        assert fabric_samples, "no /progress sample caught the live fabric"
        sample = fabric_samples[-1]
        assert sample["summary"]["workers"] >= 1
        assert sample["plan_dir"] == str(store_path) + ".fabric"
        assert counts == sorted(counts), "trial counts must be monotone"
        payload = json.loads(final)
        assert payload["trials"] == 60
        # clean finish wiped the heartbeats, so the fabric section is gone
        assert payload["fabric"] is None
        assert payload["telemetry"]["source"] == "fabric"
        assert payload["telemetry"]["payload"]["requeued"] >= 1

    def test_heartbeats_cleaned_on_clean_finish(self, tmp_path):
        import glob as globmod

        store_path = tmp_path / "clean.sqlite"
        outcome = run_fabric(small_grid(seeds=8), str(store_path),
                             run_id="clean", workers=2, shards=2,
                             keep_shards=True)
        assert outcome.ok
        assert outcome.heartbeats_cleaned == 2
        assert "2 stale heartbeats cleaned" in outcome.describe()
        workdir = str(store_path) + ".fabric"
        assert globmod.glob(os.path.join(workdir, "heartbeat-*.json")) == []
        # --keep-shards still keeps the shard stores themselves
        assert globmod.glob(os.path.join(workdir, "shard-*.sqlite"))

    def test_failed_run_keeps_heartbeats(self, tmp_path):
        # A failed outcome must leave the evidence on disk.
        import glob as globmod

        store_path = tmp_path / "fail.sqlite"
        outcome = run_fabric(small_grid(seeds=6), str(store_path),
                             run_id="fail", workers=2, shards=2,
                             chaos_kills=2, max_retries=0,
                             keep_shards=True)
        assert not outcome.ok
        assert outcome.heartbeats_cleaned == 0
        workdir = str(store_path) + ".fabric"
        assert globmod.glob(os.path.join(workdir, "heartbeat-*.json"))


# ----------------------------------------------------------------------
# Profiling satellites
# ----------------------------------------------------------------------
class TestProfiles:
    def test_campaign_profile_dump(self, tmp_path, capsys):
        pstats_path = tmp_path / "camp.pstats"
        assert main([
            "campaign", "--protocols", "coloring",
            "--topologies", "ring:n=6", "--seeds", "2",
            "--quiet", "--profile", str(pstats_path),
        ]) == 0
        assert pstats_path.exists() and pstats_path.stat().st_size > 0
        import pstats

        stats = pstats.Stats(str(pstats_path))
        assert stats.total_calls > 0

    def test_worker_profile_dump_suffixed_by_shard(self, tmp_path):
        workdir = tmp_path / "plan"
        tasks = build_plan(small_grid(seeds=4).specs, 2, str(workdir),
                           "prof")
        from repro.fabric import shard_file_path

        base = tmp_path / "worker.pstats"
        for task in tasks:
            shard_file = task.write(
                shard_file_path(str(workdir), task.index))
            assert run_worker_file(shard_file, quiet=True,
                                   profile=str(base)) == 0
        for task in tasks:
            dump = tmp_path / f"worker.pstats.shard-{task.index}.pstats"
            assert dump.exists() and dump.stat().st_size > 0
