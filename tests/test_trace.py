"""Tests for execution tracing, export and replay verification."""

import pytest

from repro.core import (
    CentralScheduler,
    Simulator,
    Trace,
    TraceRecorder,
    record_run,
    verify_replay,
)
from repro.graphs import greedy_coloring, random_connected, ring
from repro.protocols import ColoringProtocol, MISProtocol


class TestRecording:
    def test_records_one_event_per_step(self):
        net = ring(6)
        trace = record_run(ColoringProtocol.for_network(net), net, seed=3, steps=25)
        assert len(trace) == 25
        assert [e.step for e in trace.events] == list(range(25))

    def test_rules_match_protocol(self):
        net = ring(6)
        trace = record_run(ColoringProtocol.for_network(net), net, seed=3, steps=25)
        names = {r for e in trace.events for r in e.rules.values()}
        assert names <= {"recolor", "advance", ""}

    def test_comm_writes_only_on_changes(self):
        """Once silent, traced events carry no communication writes."""
        net = ring(6)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=4)
        sim.run_until_silent(max_rounds=10_000)
        recorder = TraceRecorder(sim, seed=4)
        recorder.run_steps(15)
        assert recorder.trace.comm_quiet_suffix() == 15

    def test_trace_k_efficiency(self):
        net = random_connected(10, 0.4, seed=2)
        trace = record_run(ColoringProtocol.for_network(net), net, seed=5, steps=40)
        assert trace.k_efficiency() == 1

    def test_trace_read_sets_accumulate(self):
        net = ring(5)
        trace = record_run(ColoringProtocol.for_network(net), net, seed=5, steps=40)
        # 40 synchronous steps: round-robin pointer visits both ports.
        assert trace.read_set_of(0) == {1, 2}


class TestSerialization:
    def _roundtrip(self, trace):
        return Trace.from_jsonl(trace.to_jsonl())

    def test_jsonl_roundtrip(self):
        net = ring(6)
        trace = record_run(ColoringProtocol.for_network(net), net, seed=7, steps=12)
        again = self._roundtrip(trace)
        assert again.protocol == trace.protocol
        assert again.seed == trace.seed
        assert again.events == trace.events

    def test_jsonl_roundtrip_with_mis(self):
        net = random_connected(8, 0.4, seed=1)
        colors = greedy_coloring(net)
        trace = record_run(MISProtocol(net, colors), net, seed=7, steps=12)
        assert self._roundtrip(trace).events == trace.events


class TestReplay:
    def test_randomized_protocol_replays_exactly(self):
        net = random_connected(9, 0.4, seed=6)
        factory = lambda: ColoringProtocol.for_network(net)
        trace = record_run(factory(), net, seed=11, steps=30)
        assert verify_replay(factory, net, trace)

    def test_replay_with_stochastic_scheduler(self):
        net = ring(7)
        factory = lambda: ColoringProtocol.for_network(net)
        sched = CentralScheduler
        sim = Simulator(factory(), net, scheduler=sched(), seed=13)
        trace = TraceRecorder(sim, seed=13).run_steps(30)
        assert verify_replay(factory, net, trace, scheduler_factory=sched)

    def test_replay_detects_divergence(self):
        net = ring(7)
        factory = lambda: ColoringProtocol.for_network(net)
        trace = record_run(factory(), net, seed=13, steps=10)
        # Tamper with the recorded seed: replay must not match (the
        # initial configuration differs with overwhelming probability).
        trace.seed = 14
        assert not verify_replay(factory, net, trace)
