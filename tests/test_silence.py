"""Unit tests for the sound silence (quiescence) checker."""

import pytest

from repro.core import Configuration, is_silent, silence_witness
from repro.core.silence import process_quiescence_witness
from repro.graphs import chain, greedy_coloring, ring
from repro.protocols import ColoringProtocol, MISProtocol


def coloring_config(colors):
    return Configuration(
        {p: {"C": c, "cur": 1} for p, c in colors.items()}
    )


class TestColoringSilence:
    def test_proper_coloring_is_silent(self):
        net = chain(4)
        proto = ColoringProtocol.for_network(net)
        config = coloring_config({0: 1, 1: 2, 2: 1, 3: 2})
        assert is_silent(proto, net, config)

    def test_conflict_is_not_silent(self):
        net = chain(4)
        proto = ColoringProtocol.for_network(net)
        config = coloring_config({0: 1, 1: 1, 2: 2, 3: 1})
        assert not is_silent(proto, net, config)

    def test_witness_identifies_randomized_rewrite(self):
        net = chain(3)
        proto = ColoringProtocol.for_network(net)
        config = coloring_config({0: 2, 1: 2, 2: 1})
        witness = silence_witness(proto, net, config)
        assert witness is not None
        assert witness.variable == "C"
        assert witness.randomized

    def test_hidden_conflict_found_through_pointer_walk(self):
        """A conflict the *current* pointer does not see must still
        break silence: the walk explores all reachable pointer values."""
        net = ring(4)
        proto = ColoringProtocol.for_network(net)
        # Process 0 conflicts with neighbor 1, but its cur points at 3.
        config = Configuration(
            {
                0: {"C": 1, "cur": net.port_to(0, 3)},
                1: {"C": 1, "cur": net.port_to(1, 2)},
                2: {"C": 2, "cur": 1},
                3: {"C": 3, "cur": 1},
            }
        )
        assert not is_silent(proto, net, config)

    def test_per_process_witness(self):
        net = chain(3)
        proto = ColoringProtocol.for_network(net)
        config = coloring_config({0: 1, 1: 1, 2: 2})
        assert process_quiescence_witness(proto, net, config, 0) is not None
        assert process_quiescence_witness(proto, net, config, 2) is None


class TestMISSilence:
    def _setup(self):
        net = chain(3)
        colors = greedy_coloring(net)
        return net, colors, MISProtocol(net, colors)

    def test_legitimate_with_good_pointers_is_silent(self):
        net, colors, proto = self._setup()
        # Middle is the greedy Dominator when it has the smallest color.
        dominator = min(net.processes, key=lambda p: (colors[p], p != 1))
        # Build: node 1 Dominator, ends dominated pointing at it.
        config = Configuration(
            {
                0: {"S": "dominated" if 1 != 0 else "Dominator", "C": colors[0], "cur": 1},
                1: {"S": "Dominator", "C": colors[1], "cur": 1},
                2: {"S": "dominated", "C": colors[2], "cur": 1},
            }
        )
        if colors[1] < colors[0] and colors[1] < colors[2]:
            assert is_silent(proto, net, config)

    def test_legitimate_but_not_silent(self):
        """An MIS whose dominated members lack smaller-color Dominator
        neighbors is legitimate yet NOT a communication fixed point —
        silence and legitimacy genuinely differ."""
        net = chain(3)
        colors = {0: 2, 1: 1, 2: 2}
        proto = MISProtocol(net, colors)
        # Ends are Dominators (color 2), middle dominated (color 1):
        # a valid MIS, but the middle's claim rule can fire (C.1 ≺ C.0).
        config = Configuration(
            {
                0: {"S": "Dominator", "C": 2, "cur": 1},
                1: {"S": "dominated", "C": 1, "cur": 1},
                2: {"S": "Dominator", "C": 2, "cur": 1},
            }
        )
        assert proto.is_legitimate(net, config)
        assert not is_silent(proto, net, config)

    def test_two_adjacent_dominators_not_silent(self):
        net = chain(3)
        colors = {0: 1, 1: 2, 2: 1}
        proto = MISProtocol(net, colors)
        config = Configuration(
            {
                0: {"S": "Dominator", "C": 1, "cur": 1},
                1: {"S": "Dominator", "C": 2, "cur": 1},
                2: {"S": "dominated", "C": 1, "cur": 1},
            }
        )
        witness = silence_witness(proto, net, config)
        assert witness is not None
        assert witness.process == 1  # the larger color must yield
        assert not witness.randomized


class TestSilenceAfterConvergence:
    def test_simulator_silent_state_passes_checker(self, small_network):
        from repro.core import Simulator

        proto = ColoringProtocol.for_network(small_network)
        sim = Simulator(proto, small_network, seed=5)
        sim.run_until_silent(max_rounds=5000)
        assert is_silent(proto, small_network, sim.config)
        assert proto.is_legitimate(small_network, sim.config)
