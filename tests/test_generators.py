"""Unit tests for the topology generators."""

import pytest

from repro.core.exceptions import TopologyError
from repro.graphs import (
    binary_tree,
    caterpillar,
    chain,
    clique,
    grid,
    hypercube,
    random_connected,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)


class TestDeterministicFamilies:
    def test_chain(self):
        net = chain(6)
        assert net.n == 6 and net.m == 5 and net.max_degree == 2

    def test_chain_minimum(self):
        with pytest.raises(TopologyError):
            chain(0)

    def test_ring(self):
        net = ring(5)
        assert net.n == 5 and net.m == 5
        assert all(net.degree(p) == 2 for p in net.processes)

    def test_ring_minimum(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_star(self):
        net = star(5)
        assert net.n == 6 and net.max_degree == 5
        assert sum(1 for p in net.processes if net.degree(p) == 1) == 5

    def test_clique(self):
        net = clique(5)
        assert net.m == 10 and net.max_degree == 4

    def test_grid(self):
        net = grid(3, 4)
        assert net.n == 12 and net.max_degree == 4

    def test_torus_regular(self):
        net = torus(3, 4)
        assert all(net.degree(p) == 4 for p in net.processes)

    def test_hypercube(self):
        net = hypercube(3)
        assert net.n == 8
        assert all(net.degree(p) == 3 for p in net.processes)

    def test_binary_tree(self):
        net = binary_tree(3)
        assert net.n == 15 and net.max_degree == 3

    def test_caterpillar(self):
        net = caterpillar(3, 2)
        assert net.n == 3 + 6
        # spine interior node: 2 spine + 2 legs
        assert net.max_degree == 4


class TestRandomFamilies:
    def test_random_connected_is_connected(self):
        for seed in range(5):
            net = random_connected(20, 0.15, seed=seed)
            assert net.n == 20
            assert net.diameter < 20  # diameter computable => connected

    def test_random_connected_reproducible(self):
        a = random_connected(15, 0.3, seed=42)
        b = random_connected(15, 0.3, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_regular_degrees(self):
        net = random_regular(12, 3, seed=1)
        assert all(net.degree(p) == 3 for p in net.processes)

    def test_random_regular_parity(self):
        with pytest.raises(TopologyError):
            random_regular(7, 3, seed=0)

    def test_random_tree_edge_count(self):
        net = random_tree(17, seed=2)
        assert net.m == net.n - 1

    def test_single_node_tree(self):
        assert random_tree(1).n == 1
