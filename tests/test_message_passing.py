"""Tests for the message-passing cost emulation and locally central daemon."""

import random

import pytest

from repro.core import Simulator
from repro.core.scheduler import LocallyCentralScheduler
from repro.graphs import greedy_coloring, random_connected, ring
from repro.mp import Message, PullEmulator, PushAccountant, TrafficStats
from repro.protocols import (
    ColoringProtocol,
    FullReadColoring,
    MISProtocol,
)


class TestTrafficStats:
    def test_charge_accumulates(self):
        stats = TrafficStats()
        stats.charge(Message(0, "REQ", 0, 1, 1.0))
        stats.charge(Message(0, "REP", 1, 0, 2.0))
        stats.charge(Message(1, "REQ", 0, 1, 1.0))
        assert stats.messages == 3
        assert stats.bits == pytest.approx(4.0)
        assert stats.per_link[("0", "1")] == 2
        assert stats.busiest_link_load == 2


class TestPullEmulation:
    def test_one_efficient_costs_two_messages_per_process_step(self):
        """Synchronous daemon + 1-efficient protocol: every step is
        exactly n reads = 2n messages."""
        net = ring(8)
        emu = PullEmulator(ColoringProtocol.for_network(net), net, seed=3)
        emu.run_rounds(10)  # synchronous: 10 steps
        assert emu.stats.messages == 2 * net.n * 10

    def test_delta_efficient_costs_two_delta(self):
        net = ring(8)  # Δ = 2
        emu = PullEmulator(FullReadColoring.for_network(net), net, seed=3)
        emu.sim.run_until_silent(max_rounds=20_000)
        rate = emu.messages_per_round(rounds=6)
        assert rate == pytest.approx(2 * 2 * net.n)

    def test_steady_state_rate_matches_paper_gap(self):
        """Stabilized phase: the pull cost gap between COLORING and the
        full-read baseline is the factor Δ of §3.2."""
        net = random_connected(14, 0.35, seed=5)
        delta = net.max_degree

        eff = PullEmulator(ColoringProtocol.for_network(net), net, seed=4)
        eff.sim.run_until_silent(max_rounds=20_000)
        rate_eff = eff.messages_per_round(rounds=8)

        base = PullEmulator(FullReadColoring.for_network(net), net, seed=4)
        base.sim.run_until_silent(max_rounds=20_000)
        rate_base = base.messages_per_round(rounds=8)

        # Baseline reads δ.p per process; 1-efficient reads exactly 1.
        assert rate_eff == pytest.approx(2 * net.n)
        assert rate_base == pytest.approx(2 * sum(net.degree(p) for p in net.processes))
        assert rate_base > rate_eff

    def test_message_log(self):
        net = ring(5)
        emu = PullEmulator(
            ColoringProtocol.for_network(net), net, seed=1, keep_log=True
        )
        emu.run_rounds(2)
        kinds = {m.kind for m in emu.log}
        assert kinds == {"REQ", "REP"}
        # Requests and replies travel opposite directions on each link.
        req = next(m for m in emu.log if m.kind == "REQ")
        rep = next(
            m for m in emu.log
            if m.kind == "REP" and m.src == req.dst and m.dst == req.src
        )
        assert rep.step == req.step


class TestPushAccounting:
    def test_silent_push_costs_only_refresh(self):
        net = ring(8)
        proto = ColoringProtocol.for_network(net)
        push = PushAccountant(proto, net, seed=3, refresh_period=5)
        push.sim.run_until_silent(max_rounds=20_000)
        push.stats = TrafficStats()  # reset after convergence
        push.run_rounds(10)  # synchronous: 10 steps → 2 refresh sweeps
        refresh_msgs = sum(
            1 for link, n in push.stats.per_link.items() for _ in range(n)
        )
        # Every refresh sweep is one broadcast per process: n·δ messages.
        expected_per_sweep = sum(net.degree(p) for p in net.processes)
        assert push.stats.messages % expected_per_sweep == 0
        assert push.stats.messages >= expected_per_sweep

    def test_refresh_period_validation(self):
        net = ring(5)
        with pytest.raises(ValueError):
            PushAccountant(ColoringProtocol.for_network(net), net,
                           refresh_period=0)

    def test_convergence_writes_are_charged(self):
        net = ring(8)
        push = PushAccountant(
            ColoringProtocol.for_network(net), net, seed=3,
            refresh_period=10_000,  # isolate write-triggered traffic
        )
        push.run_rounds(5)
        kinds = {"PUSH"} if push.stats.messages else set()
        assert push.stats.messages >= 0  # corrupted start usually writes
        # From an adversarial all-same-color start, writes must occur.
        from repro.core import Configuration

        proto = ColoringProtocol.for_network(net)
        config = Configuration({p: {"C": 1, "cur": 1} for p in net.processes})
        push2 = PushAccountant(proto, net, seed=5, refresh_period=10_000)
        push2.sim.config = config
        push2.run_rounds(3)
        assert push2.stats.messages > 0


class TestLocallyCentralScheduler:
    def test_never_activates_neighbors_together(self):
        net = random_connected(12, 0.3, seed=7)
        sched = LocallyCentralScheduler(net)
        rng = random.Random(1)
        for _ in range(200):
            chosen = set(sched.select(net.processes, rng))
            for p in chosen:
                assert not any(q in chosen for q in net.neighbors(p))

    def test_protocols_stabilize_under_it(self):
        net = random_connected(12, 0.3, seed=7)
        colors = greedy_coloring(net)
        for proto in (ColoringProtocol.for_network(net), MISProtocol(net, colors)):
            sim = Simulator(proto, net, scheduler=LocallyCentralScheduler(net),
                            seed=2)
            assert sim.run_until_silent(max_rounds=100_000).stabilized

    def test_p_act_validation(self):
        net = ring(5)
        with pytest.raises(ValueError):
            LocallyCentralScheduler(net, p_act=0.0)
