"""Tests for the ASCII visualization helpers and the CLI."""

import pytest

from repro.cli import main
from repro.core import Configuration, Simulator
from repro.graphs import chain, greedy_coloring, ring
from repro.protocols import ColoringProtocol, MatchingProtocol, MISProtocol
from repro.viz import (
    degree_table,
    histogram,
    render_chain_colors,
    render_coloring,
    render_matching,
    render_mis,
    render_network,
    sparkline,
)


class TestRenderers:
    def test_render_network_mentions_counts(self):
        out = render_network(ring(5))
        assert "n=5" in out and "m=5" in out

    def test_render_network_truncates(self):
        out = render_network(ring(40), max_rows=5)
        assert "more)" in out

    def test_render_coloring_flags_clashes(self):
        net = chain(3)
        config = Configuration({0: {"C": 1}, 1: {"C": 1}, 2: {"C": 2}})
        out = render_coloring(net, config)
        assert "!!" in out

    def test_render_coloring_clean_when_proper(self):
        net = chain(3)
        config = Configuration({0: {"C": 1}, 1: {"C": 2}, 2: {"C": 1}})
        assert "!!" not in render_coloring(net, config)

    def test_render_mis_marks(self):
        net = chain(3)
        config = Configuration(
            {0: {"S": "dominated"}, 1: {"S": "Dominator"}, 2: {"S": "dominated"}}
        )
        body = "\n".join(render_mis(net, config).splitlines()[1:])
        assert body.count("●") == 1 and body.count("○") == 2

    def test_render_matching_lists_pairs_and_free(self):
        net = chain(4)
        config = Configuration(
            {
                0: {"PR": 1, "M": True},
                1: {"PR": 1, "M": True},
                2: {"PR": 0, "M": False},
                3: {"PR": 0, "M": False},
            }
        )
        out = render_matching(net, config)
        assert "═══" in out and "free" in out

    def test_render_chain_colors(self):
        net = chain(3)
        config = Configuration({0: {"C": 2}, 1: {"C": 3}, 2: {"C": 1}})
        assert render_chain_colors(net, config) == "2-3-1"

    def test_sparkline_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_histogram_counts(self):
        out = histogram([1, 1, 1, 9], bins=2)
        assert "3" in out and "1" in out

    def test_histogram_empty(self):
        assert histogram([]) == "(no data)"

    def test_degree_table(self):
        assert degree_table(chain(4)) == {1: 2, 2: 2}


class TestCLI:
    def test_run_coloring(self, capsys):
        assert main(["run", "coloring", "--topology", "ring", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "stabilized=True" in out and "k-efficiency=1" in out

    def test_run_with_render(self, capsys):
        assert main(
            ["run", "mis", "--topology", "chain", "--n", "6", "--render"]
        ) == 0
        assert "●" in capsys.readouterr().out

    def test_run_with_scheduler(self, capsys):
        assert main(
            ["run", "matching", "--topology", "ring", "--n", "8",
             "--scheduler", "central"]
        ) == 0

    def test_stability_command(self, capsys):
        assert main(["stability", "mis", "--topology", "chain", "--n", "9"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 6" in out

    def test_demo_command(self, capsys):
        assert main(["demo", "thm1-overlay"]) == 0
        assert "demonstrates impossibility: True" in capsys.readouterr().out

    def test_demo_unknown(self):
        with pytest.raises(SystemExit):
            main(["demo", "nonsense"])

    def test_availability_command(self, capsys):
        assert main(
            ["availability", "coloring", "--topology", "ring", "--n", "8",
             "--total-rounds", "60"]
        ) == 0
        assert "availability" in capsys.readouterr().out

    def test_unknown_protocol(self):
        with pytest.raises(SystemExit):
            main(["run", "paxos", "--topology", "ring", "--n", "8"])

    def test_unknown_topology(self):
        with pytest.raises(SystemExit):
            main(["run", "coloring", "--topology", "moebius", "--n", "8"])
