"""Tests for the Theorem 1 / Theorem 2 impossibility demonstrations."""

import pytest

from repro.core import Simulator, is_silent
from repro.graphs import chain, ring, theorem1_chain, theorem2_network
from repro.impossibility import (
    FixedWatchColoring,
    OrientedWatchColoring,
    build_trap_configuration,
    overlay_five_chain,
    theorem1_gadget_demo,
    theorem1_overlay_demo,
    theorem1_splice_demo,
    theorem2_demo,
    theorem2_gadget_demo,
    transplant_states,
)


class TestStrawmanProtocols:
    def test_fixed_watch_is_1_stable_by_construction(self):
        """The strawman reads one fixed neighbor forever — the strongest
        stability class the theorems rule out for Δ > 1."""
        net = ring(6)
        proto = FixedWatchColoring(palette_size=3)
        sim = Simulator(proto, net, seed=1)
        sim.run_steps(300)
        assert sim.metrics.observed_stability() <= 1

    def test_fixed_watch_stabilizes_on_favourable_ports(self):
        """On a ring with default ports every edge is watched by one
        endpoint, so the strawman genuinely self-stabilizes there — the
        impossibility needs the *adversarial* numbering."""
        net = ring(6)
        proto = FixedWatchColoring(palette_size=3)
        watched = proto.watched_edges(net)
        if len(watched) == net.m:
            sim = Simulator(proto, net, seed=2)
            report = sim.run_until_silent(max_rounds=5000)
            assert report.legitimate

    def test_unwatched_edges_detection(self):
        net = theorem1_chain().with_ports({3: [2, 4], 4: [5, 3]})
        proto = FixedWatchColoring(palette_size=3)
        assert proto.unwatched_edges(net) == [(3, 4)]

    def test_oriented_strawman_watches_successors(self):
        oriented = theorem2_network()
        proto = OrientedWatchColoring(3, oriented)
        net = oriented.network
        for p in net.processes:
            succ = oriented.succ.get(p, frozenset())
            watched = net.neighbor_at(p, proto.watch_port_of(p))
            if succ:
                assert watched in succ


class TestTrapConstruction:
    def test_rejects_watched_edge(self):
        net = theorem1_chain()
        proto = FixedWatchColoring(palette_size=3)
        watched = next(iter(proto.watched_edges(net)))
        with pytest.raises(ValueError):
            build_trap_configuration(proto, net, tuple(watched))

    def test_trap_is_monochromatic_only_on_trap_edge(self):
        net = theorem1_chain().with_ports({3: [2, 4], 4: [5, 3]})
        proto = FixedWatchColoring(palette_size=3)
        config = build_trap_configuration(proto, net, (3, 4))
        assert config.get(3, "C") == config.get(4, "C") == 1
        for p, q in net.edges():
            if {p, q} != {3, 4}:
                assert config.get(p, "C") != config.get(q, "C")


class TestSplicing:
    def test_transplant_copies_full_states(self):
        from repro.core import Configuration

        a = Configuration({1: {"C": 1}, 2: {"C": 2}})
        b = Configuration({1: {"C": 9}, 2: {"C": 8}})
        merged = transplant_states(
            {"A": a, "B": b}, {10: ("A", 1), 20: ("B", 2)}
        )
        assert merged.get(10, "C") == 1 and merged.get(20, "C") == 8

    def test_overlay_takes_left_from_gamma3(self):
        from repro.core import Configuration

        g3 = Configuration({i: {"C": i} for i in range(1, 6)})
        g4 = Configuration({i: {"C": 10 + i} for i in range(1, 6)})
        merged = overlay_five_chain(g3, g4)
        assert [merged.get(i, "C") for i in range(1, 6)] == [1, 2, 3, 14, 15]


ALL_DEMOS = [
    ("overlay", theorem1_overlay_demo),
    ("splice", theorem1_splice_demo),
    ("gadget2", lambda: theorem1_gadget_demo(2)),
    ("gadget3", lambda: theorem1_gadget_demo(3)),
    ("gadget5", lambda: theorem1_gadget_demo(5)),
    ("thm2", theorem2_demo),
    ("thm2-gadget3", lambda: theorem2_gadget_demo(3)),
    ("thm2-gadget4", lambda: theorem2_gadget_demo(4)),
]


@pytest.mark.parametrize("name,demo_fn", ALL_DEMOS, ids=[d[0] for d in ALL_DEMOS])
class TestDemonstrations:
    def test_trap_is_silent(self, name, demo_fn):
        demo = demo_fn()
        assert is_silent(demo.protocol, demo.network, demo.config)

    def test_trap_is_illegitimate(self, name, demo_fn):
        demo = demo_fn()
        assert not demo.protocol.is_legitimate(demo.network, demo.config)

    def test_trap_edge_unwatched(self, name, demo_fn):
        demo = demo_fn()
        unwatched = {frozenset(e) for e in demo.protocol.unwatched_edges(demo.network)}
        assert frozenset(demo.trap_edge) in unwatched

    def test_dynamic_verification(self, name, demo_fn):
        report = demo_fn().verify(rounds=15, seed=7)
        assert report.demonstrates_impossibility
        assert not report.comm_changed


class TestContrastWithColoring:
    def test_real_coloring_escapes_the_same_trap(self):
        """From the very trap that freezes the strawman, protocol
        COLORING recovers — its round-robin pointer eventually reads the
        conflicting edge.  This is the positive/negative contrast at the
        heart of the paper."""
        from repro.core import Configuration
        from repro.protocols import ColoringProtocol

        demo = theorem1_overlay_demo()
        net = demo.network
        proto = ColoringProtocol(palette_size=3)
        config = Configuration(
            {
                p: {"C": demo.config.get(p, "C"), "cur": 1}
                for p in net.processes
            }
        )
        sim = Simulator(proto, net, seed=5, config=config)
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.stabilized
