"""Tests for the experiment harness (runner + tables)."""

import pytest

from repro.core import CentralScheduler
from repro.experiments import (
    format_markdown_table,
    format_table,
    run_sweep,
    run_trial,
)
from repro.graphs import greedy_coloring, ring
from repro.protocols import ColoringProtocol, MISProtocol


class TestRunTrial:
    def test_trial_fields(self):
        net = ring(6)
        t = run_trial(ColoringProtocol.for_network(net), net, seed=1)
        assert t.protocol == "COLORING"
        assert t.scheduler == "synchronous"
        assert (t.n, t.m, t.delta) == (6, 6, 2)
        assert t.legitimate and t.silent
        assert t.k_efficiency == 1

    def test_trial_with_explicit_scheduler(self):
        net = ring(6)
        t = run_trial(
            ColoringProtocol.for_network(net), net,
            scheduler=CentralScheduler(), seed=2,
        )
        assert t.scheduler == "central"
        # Central daemon: rounds cost about n steps each.
        assert t.steps >= t.rounds

    def test_trial_deterministic(self):
        net = ring(6)
        a = run_trial(ColoringProtocol.for_network(net), net, seed=7)
        b = run_trial(ColoringProtocol.for_network(net), net, seed=7)
        assert a == b


class TestSweep:
    def test_sweep_aggregates(self):
        net = ring(6)
        point = run_sweep(
            "ring6",
            lambda n: ColoringProtocol.for_network(n),
            net,
            seeds=range(4),
        )
        assert len(point.trials) == 4
        assert point.all_stabilized
        assert point.min("rounds") <= point.mean("rounds") <= point.max("rounds")
        assert point.stdev("rounds") >= 0

    def test_sweep_with_deterministic_protocol(self):
        net = ring(6)
        colors = greedy_coloring(net)
        point = run_sweep(
            "mis", lambda n: MISProtocol(n, colors), net, seeds=[0, 1]
        )
        assert point.all_stabilized


class TestTables:
    def test_ascii_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["bb", 2.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "----" in lines[2]
        assert "2.50" in lines[4]

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_markdown(self):
        out = format_markdown_table(["a", "b"], [[1, 2]])
        lines = out.splitlines()
        assert lines[0].startswith("| a | b |")
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
