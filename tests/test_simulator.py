"""Unit tests for the step simulator (paper §2 semantics)."""

import pytest

from repro.core import (
    Configuration,
    ConvergenceError,
    FixedSequenceScheduler,
    Simulator,
    SynchronousScheduler,
)
from repro.graphs import chain, greedy_coloring, ring
from repro.protocols import ColoringProtocol, MISProtocol


class TestStepSemantics:
    def test_reads_resolve_in_pre_step_configuration(self):
        """Simultaneous writes: both endpoints of a conflict read γi and
        may both recolor in the same step (no sequential interleaving)."""
        net = chain(2)
        proto = ColoringProtocol(palette_size=2)
        config = Configuration(
            {0: {"C": 1, "cur": 1}, 1: {"C": 1, "cur": 1}}
        )
        sim = Simulator(
            proto,
            net,
            scheduler=FixedSequenceScheduler([[0, 1]]),
            seed=3,
            config=config,
        )
        record = sim.step()
        assert record.executed == {0: "recolor", 1: "recolor"}

    def test_disabled_process_is_noop(self):
        net = chain(2)
        proto = ColoringProtocol(palette_size=3)
        config = Configuration(
            {0: {"C": 1, "cur": 1}, 1: {"C": 2, "cur": 1}}
        )
        sim = Simulator(proto, net, seed=0, config=config)
        record = sim.step()
        # Properly colored: only the advance action fires (never None
        # for COLORING — its two guards partition the state space).
        assert all(name == "advance" for name in record.executed.values())
        assert sim.config.get(0, "C") == 1

    def test_round_counting_synchronous(self):
        net = ring(5)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, scheduler=SynchronousScheduler(), seed=1)
        sim.run_steps(7)
        assert sim.round_tracker.completed_rounds == 7

    def test_run_rounds(self):
        net = ring(5)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=1)
        steps = sim.run_rounds(3)
        assert steps == 3  # synchronous default
        assert sim.round_tracker.completed_rounds == 3

    def test_replayability(self):
        net = ring(6)
        results = []
        for _ in range(2):
            proto = ColoringProtocol.for_network(net)
            sim = Simulator(proto, net, seed=99)
            sim.run_steps(20)
            results.append(sim.config.as_dict())
        assert results[0] == results[1]

    def test_seed_changes_trajectory(self):
        net = ring(6)
        configs = []
        for seed in (1, 2):
            proto = ColoringProtocol.for_network(net)
            sim = Simulator(proto, net, seed=seed)
            configs.append(sim.config.as_dict())
        assert configs[0] != configs[1]

    def test_initial_configuration_validated(self):
        net = chain(3)
        proto = ColoringProtocol(palette_size=3)
        bad = Configuration(
            {0: {"C": 9, "cur": 1}, 1: {"C": 1, "cur": 1}, 2: {"C": 1, "cur": 1}}
        )
        from repro.core import DomainError

        with pytest.raises(DomainError):
            Simulator(proto, net, config=bad)

    def test_constants_pinned(self):
        net = chain(3)
        colors = greedy_coloring(net)
        proto = MISProtocol(net, colors)
        bad = proto.arbitrary_configuration(net)
        bad.set(0, "C", colors[0] % max(colors.values()) + 1)
        from repro.core import DomainError

        if bad.get(0, "C") != colors[0]:
            with pytest.raises(DomainError):
                Simulator(proto, net, config=bad)


class TestRunHelpers:
    def test_run_until_silent_reports(self):
        net = ring(6)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=4)
        report = sim.run_until_silent(max_rounds=5000)
        assert report.silent and report.legitimate and report.stabilized
        assert report.silent_at_round == report.rounds

    def test_run_until_silent_budget(self):
        """An unsatisfiable palette can never silence — budget must trip."""
        net = ring(5)  # odd ring is not 2-colorable
        proto = ColoringProtocol(palette_size=2)
        sim = Simulator(proto, net, seed=0)
        with pytest.raises(ConvergenceError):
            sim.run_until_silent(max_rounds=30)

    def test_run_until_legitimate(self):
        net = ring(6)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=4)
        report = sim.run_until_legitimate(max_rounds=5000)
        assert report.legitimate

    def test_enabled_processes(self):
        net = chain(2)
        proto = ColoringProtocol(palette_size=3)
        config = Configuration({0: {"C": 1, "cur": 1}, 1: {"C": 1, "cur": 1}})
        sim = Simulator(proto, net, seed=0, config=config)
        assert sorted(sim.enabled_processes()) == [0, 1]

    def test_measure_suffix_stability_returns_all_processes(self):
        net = ring(6)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=4)
        sim.run_until_silent(max_rounds=5000)
        sets = sim.measure_suffix_stability(extra_rounds=5)
        assert set(sets) == set(net.processes)


class TestMetricsIntegration:
    def test_coloring_reads_at_most_one_neighbor(self, any_scheduler):
        net = ring(8)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, scheduler=any_scheduler, seed=7)
        sim.run_steps(300)
        assert sim.metrics.observed_k_efficiency() <= 1

    def test_bits_read_bounded_by_domain(self):
        net = ring(8)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=7)
        sim.run_steps(100)
        assert sim.metrics.max_bits_in_step <= proto.palette.bits + 1e-9
