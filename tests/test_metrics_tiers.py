"""Metrics tiers: aggregate ≡ full, off is inert, retention is bounded.

The ``aggregate`` tier must stream exactly the measures the ``full``
tier derives from per-step records — the property tests here compare
every aggregate (totals, maxima, activation counts, whole-run and
suffix read-sets) across coloring/MIS/matching × central/synchronous/
random-subset × 5 seeds.  The remaining tests pin the tier plumbing:
lean step records, the trace-recorder guard, spec/campaign/CLI wiring,
and the collector's bounded-retention memory contract.
"""

import pytest

from repro.api import (
    Campaign,
    ExperimentSpec,
    execute_trial,
    protocol_registry,
    scheduler_registry,
    topology_registry,
)
from repro.core import (
    METRICS_TIERS,
    LeanStepRecord,
    MetricsCollector,
    Simulator,
    StepRecord,
    TraceRecorder,
)
from repro.graphs import ring

PROTOCOLS = ("coloring", "mis", "matching")
SCHEDULERS = ("central", "synchronous", "random-subset")
SEEDS = (0, 1, 2, 3, 4)


def _build_sim(protocol, scheduler, seed, metrics, n=10):
    net = topology_registry.build("ring", n=n)
    proto = protocol_registry.build(protocol, net)
    sched = scheduler_registry.build(scheduler, net)
    return Simulator(proto, net, scheduler=sched, seed=seed, metrics=metrics)


def _observables(sim):
    m = sim.metrics
    return {
        "summary": m.summary(),
        "activations": dict(m.activations),
        "read_sets": {p: set(s) for p, s in m.read_sets.items()},
        "suffix": (
            None
            if m.suffix_read_sets is None
            else {p: set(s) for p, s in m.suffix_read_sets.items()}
        ),
        "suffix_start": m.suffix_start_step,
    }


class TestAggregateEqualsFull:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_identical_measures_across_seeds(self, protocol, scheduler):
        for seed in SEEDS:
            sims = {
                tier: _build_sim(protocol, scheduler, seed, tier)
                for tier in ("full", "aggregate")
            }
            for sim in sims.values():
                sim.run_steps(12)
                # Arm the suffix mid-run so the ♦-stability read-sets
                # are exercised on both tiers.
                sim.metrics.start_suffix()
                sim.run_steps(12)
            assert _observables(sims["full"]) == _observables(sims["aggregate"]), (
                protocol, scheduler, seed
            )

    def test_identical_trial_results_to_silence(self):
        for protocol in PROTOCOLS:
            net = topology_registry.build("ring", n=10)
            results = {}
            for tier in ("full", "aggregate"):
                results[tier] = execute_trial(
                    protocol_registry.build(protocol, net),
                    net,
                    scheduler_registry.build("synchronous", net),
                    seed=7,
                    metrics=tier,
                )
            assert results["full"] == results["aggregate"], protocol

    def test_duplicate_selection_folds_once(self):
        # A scripted scheduler may repeat a pid within one step; the
        # full tier dedups via frozenset/dict keys, and the lean fold
        # must agree.
        from repro.core import FixedSequenceScheduler

        observables = {}
        for tier in ("full", "aggregate"):
            net = topology_registry.build("ring", n=5)
            proto = protocol_registry.build("mis", net)
            sched = FixedSequenceScheduler([[0, 0], [1, 1, 2]])
            sim = Simulator(proto, net, scheduler=sched, seed=2, metrics=tier)
            sim.run_steps(2)
            observables[tier] = _observables(sim)
        assert observables["full"] == observables["aggregate"]

    def test_suffix_stability_measure_matches(self):
        for tier in ("full", "aggregate"):
            sim = _build_sim("mis", "synchronous", 3, tier)
            sim.run_until_silent()
            suffix = sim.measure_suffix_stability(extra_rounds=5)
            if tier == "full":
                reference = suffix
        assert suffix == reference


class TestTierPlumbing:
    def test_step_record_types_by_tier(self):
        full = _build_sim("coloring", "central", 1, "full")
        assert isinstance(full.step(), StepRecord)
        for tier in ("aggregate", "off"):
            sim = _build_sim("coloring", "central", 1, tier)
            record = sim.step()
            assert isinstance(record, LeanStepRecord)
            assert record.index == 0
            assert record.activated_count == 1

    def test_lean_closed_round_matches_full(self):
        closed = {}
        for tier in ("full", "aggregate"):
            sim = _build_sim("coloring", "synchronous", 2, tier)
            closed[tier] = [sim.step().closed_round for _ in range(6)]
        assert closed["full"] == closed["aggregate"]

    def test_off_tier_leaves_collector_untouched(self):
        sim = _build_sim("coloring", "synchronous", 1, "off")
        report = sim.run_until_silent()
        assert sim.metrics.steps == 0
        assert sim.metrics.total_bits == 0.0
        assert sim.metrics.summary()["k_efficiency"] == 0
        # Step and round counting live on the simulator, not the collector.
        assert report.steps == sim.step_index > 0
        assert report.rounds > 0 and report.silent

    def test_off_tier_runs_replay_identically(self):
        configs = {}
        for tier in ("full", "off"):
            sim = _build_sim("coloring", "synchronous", 9, tier)
            sim.run_steps(20)
            configs[tier] = sim.config
        assert configs["full"] == configs["off"]

    def test_unknown_tier_rejected(self):
        net = ring(4)
        proto = protocol_registry.build("coloring", net)
        with pytest.raises(ValueError, match="metrics tier"):
            Simulator(proto, net, metrics="everything")

    def test_trace_recorder_requires_full(self):
        sim = _build_sim("coloring", "central", 1, "aggregate")
        with pytest.raises(ValueError, match="metrics='full'"):
            TraceRecorder(sim)


class TestRetentionContract:
    def test_no_retention_by_default(self):
        sim = _build_sim("coloring", "central", 1, "full")
        sim.run_steps(30)
        assert sim.metrics.records is None

    def test_bounded_retention_keeps_most_recent(self):
        net = ring(8)
        proto = protocol_registry.build("coloring", net)
        sim = Simulator(proto, net, seed=1, keep_records=5)
        sim.run_steps(30)
        records = sim.metrics.records
        assert records is not None
        assert len(records) == 5  # bounded, never the whole run
        assert [r.index for r in records] == list(range(25, 30))

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector([0, 1], keep_records=-1)


class TestSpecAndCampaignWiring:
    def test_spec_round_trip_and_default(self):
        spec = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8})
        assert spec.metrics == "full"
        tuned = spec.variant(metrics="aggregate")
        assert ExperimentSpec.from_json(tuned.to_json()) == tuned
        # Old payloads without the field still parse.
        payload = spec.to_dict()
        del payload["metrics"]
        assert ExperimentSpec.from_dict(payload).metrics == "full"

    def test_spec_validates_tier(self):
        with pytest.raises(ValueError, match="metrics tier"):
            ExperimentSpec(protocol="coloring", topology="ring",
                           metrics="sometimes")

    def test_key_semantics(self):
        spec = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8})
        # full and aggregate are result-equivalent: same resume key.
        assert spec.key() == spec.variant(metrics="aggregate").key()
        # off zeroes the measures: it must not be resumed as a stand-in.
        assert spec.key() != spec.variant(metrics="off").key()

    def test_spec_run_matches_across_tiers(self):
        spec = ExperimentSpec(protocol="mis", topology="ring",
                              topology_params={"n": 8}, seed=4)
        assert spec.run() == spec.variant(metrics="aggregate").run()

    def test_campaign_grid_propagates_tier(self):
        campaign = Campaign.grid(
            protocols=["coloring"],
            topologies=[("ring", {"n": 6})],
            seeds=range(2),
            metrics="aggregate",
        )
        assert all(s.metrics == "aggregate" for s in campaign.specs)
        assert METRICS_TIERS == ("full", "aggregate", "off")
