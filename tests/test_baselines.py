"""Tests for the Δ-efficient baseline protocols."""

import pytest

from repro.core import CentralScheduler, Simulator
from repro.graphs import (
    chain,
    clique,
    greedy_coloring,
    random_connected,
    ring,
    star,
)
from repro.predicates import (
    is_maximal_independent_set,
    is_maximal_matching,
    dominators,
    matched_edges,
)
from repro.protocols import FullReadColoring, FullReadMIS, FullReadMatching

FAMILIES = {
    "chain8": lambda: chain(8),
    "ring9": lambda: ring(9),
    "star6": lambda: star(6),
    "clique5": lambda: clique(5),
    "gnp14": lambda: random_connected(14, 0.3, seed=2),
}


class TestFullReadColoring:
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    def test_stabilizes(self, family):
        net = FAMILIES[family]()
        sim = Simulator(FullReadColoring.for_network(net), net, seed=1)
        assert sim.run_until_silent(max_rounds=20_000).stabilized

    def test_reads_full_neighborhood(self):
        """The baseline is Δ-efficient and no better: once stable, the
        detection guard scans every neighbor each step."""
        net = random_connected(12, 0.35, seed=4)
        sim = Simulator(FullReadColoring.for_network(net), net, seed=2)
        sim.run_until_silent(max_rounds=20_000)
        sim.metrics.max_reads_in_step = 0
        sim.run_rounds(5)
        assert sim.metrics.observed_k_efficiency() == net.max_degree

    def test_bits_are_delta_times_one_color(self):
        """§3.2's comparison: Δ·log(Δ+1) bits per step vs log(Δ+1)."""
        net = clique(5)
        proto = FullReadColoring.for_network(net)
        sim = Simulator(proto, net, seed=3)
        sim.run_until_silent(max_rounds=20_000)
        sim.metrics.max_bits_in_step = 0.0
        sim.run_rounds(3)
        delta = net.max_degree
        assert sim.metrics.max_bits_in_step == pytest.approx(
            delta * proto.palette.bits
        )


class TestFullReadMIS:
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    def test_stabilizes(self, family):
        net = FAMILIES[family]()
        proto = FullReadMIS(net, greedy_coloring(net))
        sim = Simulator(proto, net, seed=1)
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.stabilized

    def test_result_is_mis(self):
        net = random_connected(15, 0.3, seed=7)
        proto = FullReadMIS(net, greedy_coloring(net))
        sim = Simulator(proto, net, seed=2)
        sim.run_until_silent(max_rounds=20_000)
        assert is_maximal_independent_set(net, dominators(net, sim.config))

    def test_stabilizes_under_central_scheduler(self):
        net = random_connected(12, 0.3, seed=3)
        proto = FullReadMIS(net, greedy_coloring(net))
        sim = Simulator(proto, net, scheduler=CentralScheduler(), seed=5)
        assert sim.run_until_silent(max_rounds=50_000).stabilized


class TestFullReadMatching:
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    def test_stabilizes(self, family):
        net = FAMILIES[family]()
        proto = FullReadMatching(net, greedy_coloring(net))
        sim = Simulator(proto, net, seed=1)
        assert sim.run_until_silent(max_rounds=20_000).stabilized

    def test_result_is_maximal_matching(self):
        net = random_connected(15, 0.3, seed=7)
        proto = FullReadMatching(net, greedy_coloring(net))
        sim = Simulator(proto, net, seed=2)
        sim.run_until_silent(max_rounds=20_000)
        assert is_maximal_matching(net, matched_edges(net, sim.config))


class TestAgreementWithOneEfficient:
    """Both families must solve the same problems on the same inputs —
    results differ in communication pattern, not in correctness."""

    def test_mis_both_valid(self):
        from repro.protocols import MISProtocol

        net = random_connected(13, 0.3, seed=9)
        colors = greedy_coloring(net)
        for proto in (MISProtocol(net, colors), FullReadMIS(net, colors)):
            sim = Simulator(proto, net, seed=4)
            sim.run_until_silent(max_rounds=20_000)
            assert is_maximal_independent_set(net, dominators(net, sim.config))

    def test_matching_both_valid(self):
        from repro.protocols import MatchingProtocol

        net = random_connected(13, 0.3, seed=9)
        colors = greedy_coloring(net)
        for proto in (MatchingProtocol(net, colors), FullReadMatching(net, colors)):
            sim = Simulator(proto, net, seed=4)
            sim.run_until_silent(max_rounds=50_000)
            assert is_maximal_matching(net, matched_edges(net, sim.config))
