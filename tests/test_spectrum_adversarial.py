"""Tests for the MIS window spectrum, adversarial search, CSV export."""

import pytest

from repro.analysis import (
    AdversarialResult,
    matching_round_bound,
    mis_round_bound,
    search_worst_case,
)
from repro.core import Simulator
from repro.experiments import format_csv, save_csv
from repro.graphs import clique, greedy_coloring, random_connected, ring
from repro.predicates import dominators, is_maximal_independent_set
from repro.protocols import (
    MISProtocol,
    MatchingProtocol,
    WindowMISProtocol,
)


class TestWindowMIS:
    @pytest.mark.parametrize("k", [1, 2, 3, 8])
    def test_stabilizes_for_every_k(self, k):
        net = random_connected(14, 0.3, seed=3)
        proto = WindowMISProtocol(net, greedy_coloring(net), k)
        sim = Simulator(proto, net, seed=5)
        report = sim.run_until_silent(max_rounds=50_000)
        assert report.stabilized
        assert is_maximal_independent_set(net, dominators(net, sim.config))

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_exactly_k_efficient(self, k):
        net = clique(6)
        proto = WindowMISProtocol(net, greedy_coloring(net), k)
        sim = Simulator(proto, net, seed=2)
        sim.run_until_silent(max_rounds=50_000)
        sim.run_rounds(5)
        assert sim.metrics.observed_k_efficiency() == k

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_round_bound_still_holds(self, k):
        """Lemma 4's Δ·#C survives the window generalisation."""
        net = random_connected(16, 0.3, seed=7)
        colors = greedy_coloring(net)
        for seed in range(3):
            sim = Simulator(WindowMISProtocol(net, colors, k), net, seed=seed)
            report = sim.run_until_silent(max_rounds=50_000)
            assert report.rounds <= mis_round_bound(net, colors)

    def test_k1_matches_paper_mis_outcome(self):
        """k = 1 and protocol MIS produce the same silent dominator set
        from the same start under the same schedule (they are the same
        algorithm)."""
        net = ring(9)
        colors = greedy_coloring(net)
        paper = MISProtocol(net, colors)
        window = WindowMISProtocol(net, colors, 1)
        start = paper.arbitrary_configuration(net, __import__("random").Random(3))
        results = []
        for proto in (paper, window):
            sim = Simulator(proto, net, seed=8, config=start)
            sim.run_until_silent(max_rounds=50_000)
            results.append(dominators(net, sim.config))
        assert results[0] == results[1]

    def test_invalid_k(self):
        net = ring(5)
        with pytest.raises(ValueError):
            WindowMISProtocol(net, greedy_coloring(net), 0)


class TestAdversarialSearch:
    def test_search_respects_lemma_bounds(self):
        net = random_connected(12, 0.3, seed=5)
        result = search_worst_case(
            lambda n: MISProtocol(n, greedy_coloring(n)), net,
            trials=12, seed=1,
        )
        assert isinstance(result, AdversarialResult)
        assert 0 <= result.worst_rounds <= mis_round_bound(net, greedy_coloring(net))

    def test_search_matching_within_bound(self):
        net = random_connected(10, 0.3, seed=6)
        result = search_worst_case(
            lambda n: MatchingProtocol(n, greedy_coloring(n)), net,
            trials=10, seed=2,
        )
        assert result.worst_rounds <= matching_round_bound(net)

    def test_search_finds_at_least_average_hardness(self):
        """The adversarial max is ≥ any single observed run."""
        net = ring(10)
        single = Simulator(
            MISProtocol(net, greedy_coloring(net)), net, seed=0
        ).run_until_silent(max_rounds=50_000)
        result = search_worst_case(
            lambda n: MISProtocol(n, greedy_coloring(n)), net,
            trials=15, seed=0, relabel_ports=False,
        )
        assert result.worst_rounds >= single.rounds

    def test_reproducible(self):
        net = ring(8)
        a = search_worst_case(
            lambda n: MISProtocol(n, greedy_coloring(n)), net, trials=6, seed=9
        )
        b = search_worst_case(
            lambda n: MISProtocol(n, greedy_coloring(n)), net, trials=6, seed=9
        )
        assert (a.worst_rounds, a.ports_seed, a.run_seed) == (
            b.worst_rounds, b.ports_seed, b.run_seed
        )


class TestCSVExport:
    def test_format_csv(self):
        out = format_csv(["a", "b"], [[1, 2.5], [True, "x"]])
        lines = out.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.50"
        assert lines[2] == "yes,x"

    def test_save_csv(self, tmp_path):
        path = tmp_path / "sweep.csv"
        save_csv(str(path), ["n", "rounds"], [[8, 3], [16, 5]])
        content = path.read_text().strip().splitlines()
        assert content == ["n,rounds", "8,3", "16,5"]
