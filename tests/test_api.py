"""Tests for the declarative experiment API (registries, specs,
campaigns)."""

import json

import pytest

import repro
from repro.api import (
    Campaign,
    ExperimentSpec,
    Registry,
    engine_registry,
    load_campaign_results,
    protocol_registry,
    scheduler_registry,
    topology_registry,
)
from repro.core import (
    ENGINE_NAMES,
    EnabledSetEngine,
    Scheduler,
    Simulator,
    make_scheduler,
)
from repro.core.scheduler import DEFAULT_SCHEDULERS, RoundRobinScheduler
from repro.experiments import TrialResult, run_trial
from repro.graphs import ring
from repro.protocols import ColoringProtocol


class TestRegistry:
    def test_decorator_registration_and_build(self):
        reg = Registry("widget")

        @reg.register("double")
        def _double(x):
            return 2 * x

        assert "double" in reg
        assert reg.build("double", 21) == 42
        assert reg.names() == ["double"]

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("x", lambda: 2)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            protocol_registry.build("paxos", ring(4))

    def test_bad_params(self):
        with pytest.raises(ValueError, match="bad parameters"):
            topology_registry.build("ring", sides=5)

    def test_builder_internal_typeerror_propagates(self):
        # Only argument-binding failures become ValueError; a TypeError
        # raised inside the builder body keeps its real traceback.
        reg = Registry("widget")

        @reg.register("buggy")
        def _buggy():
            return "a" + 1

        with pytest.raises(TypeError):
            reg.build("buggy")


class TestRegistryCompleteness:
    """Every exported implementation must be resolvable by name."""

    def test_all_paper_protocols_registered(self):
        for name in ("coloring", "mis", "matching",
                     "coloring-full", "mis-full", "matching-full",
                     "window-coloring", "window-mis"):
            assert name in protocol_registry

    def test_every_protocol_builds_and_runs(self):
        for name in protocol_registry:
            result = ExperimentSpec(
                protocol=name, topology="ring", topology_params={"n": 6},
                seed=1,
            ).run()
            assert result.silent, name

    def test_every_topology_builds(self):
        params = {
            "chain": {"n": 4}, "ring": {"n": 4}, "star": {"leaves": 3},
            "clique": {"n": 4}, "grid": {"rows": 2, "cols": 3},
            "torus": {"rows": 3, "cols": 3}, "hypercube": {"dim": 3},
            "binary-tree": {"height": 2},
            "caterpillar": {"spine": 3, "legs_per_node": 1},
            "gnp": {"n": 8, "p": 0.4, "seed": 0},
            "regular": {"n": 8, "d": 3, "seed": 0},
            "sparse": {"n": 10, "avg_degree": 2.5, "seed": 0},
            "tree": {"n": 6, "seed": 0},
        }
        assert sorted(params) == topology_registry.names()
        for name, kwargs in params.items():
            net = topology_registry.build(name, **kwargs)
            assert net.n >= 2

    def test_every_core_scheduler_registered(self):
        net = ring(5)
        assert {cls.name for cls in DEFAULT_SCHEDULERS} == set(
            scheduler_registry.names()
        )
        for name in scheduler_registry:
            sched = scheduler_registry.build(name, net)
            assert isinstance(sched, Scheduler)
            assert sched.name == name

    def test_make_scheduler_covers_all(self):
        assert make_scheduler("fixed-sequence", sequence=[[0]]).name == \
            "fixed-sequence"
        assert make_scheduler("locally-central", network=ring(5)).name == \
            "locally-central"

    def test_every_core_engine_registered(self):
        assert sorted(ENGINE_NAMES) == engine_registry.names()
        for name in engine_registry:
            engine = engine_registry.build(name)
            assert isinstance(engine, EnabledSetEngine)
            assert engine.name == name

    def test_enabled_only_daemons_build_from_params(self):
        net = ring(5)
        for name in ("synchronous", "central", "random-subset",
                     "round-robin", "locally-central"):
            sched = scheduler_registry.build(name, net, enabled_only=True)
            assert sched.draws_from == "enabled"
            assert scheduler_registry.build(name, net).draws_from == "all"


class TestExperimentSpec:
    def test_json_round_trip(self):
        spec = ExperimentSpec(
            protocol="mis", topology="gnp",
            topology_params={"n": 20, "p": 0.2, "seed": 4},
            scheduler="locally-central", scheduler_params={"p_act": 0.7},
            seed=9, max_rounds=1234,
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.key() == spec.key()

    def test_dict_round_trip_defaults(self):
        spec = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8})
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ExperimentSpec"):
            ExperimentSpec.from_dict({"protocol": "coloring",
                                      "topology": "ring", "budget": 3})

    def test_key_distinguishes_params_and_seed(self):
        base = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8})
        assert base.key() != base.variant(seed=1).key()
        assert base.key() != base.variant(
            topology_params={"n": 9}).key()

    def test_params_normalized_like_json(self):
        # Tuples become lists at construction, so a spec equals its
        # re-parsed self.
        spec = ExperimentSpec(
            protocol="coloring", topology="ring",
            topology_params={"n": 8},
            scheduler="fixed-sequence",
            scheduler_params={"sequence": ((0, 1), (2,))},
        )
        assert spec.scheduler_params == {"sequence": [[0, 1], [2]]}
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_run_matches_legacy_run_trial(self):
        net = ring(8)
        legacy = run_trial(ColoringProtocol.for_network(net), net, seed=5)
        declarative = ExperimentSpec(
            protocol="coloring", topology="ring",
            topology_params={"n": 8}, seed=5,
        ).run()
        assert declarative == legacy

    def test_build_simulator_uses_spec_scheduler(self):
        sim = ExperimentSpec(
            protocol="coloring", topology="ring", topology_params={"n": 6},
            scheduler="round-robin",
        ).build_simulator()
        assert sim.scheduler.name == "round-robin"

    def test_spec_is_frozen(self):
        spec = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8})
        with pytest.raises(AttributeError):
            spec.seed = 3

    def test_engine_field_round_trips_and_builds(self):
        spec = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8}, engine="scan")
        assert spec.to_dict()["engine"] == "scan"
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert spec.build_simulator().engine.name == "scan"
        # Specs predating the engine field deserialize to the default.
        legacy = dict(spec.to_dict())
        del legacy["engine"]
        assert ExperimentSpec.from_dict(legacy).engine == "incremental"

    def test_engine_choice_does_not_change_results(self):
        base = ExperimentSpec(
            protocol="mis", topology="gnp",
            topology_params={"n": 14, "p": 0.3, "seed": 2},
            scheduler="central", seed=5,
        )
        results = {
            engine: base.variant(engine=engine).run()
            for engine in engine_registry
        }
        assert len(set(results.values())) == 1

    def test_campaign_grid_engine_applies_to_every_spec(self):
        campaign = Campaign.grid(
            protocols=["coloring"], topologies=[("ring", {"n": 8})],
            seeds=range(2), engine="debug",
        )
        assert all(s.engine == "debug" for s in campaign.specs)

    def test_key_ignores_engine(self):
        # The engine is a run-time strategy, not an experiment axis:
        # switching it must not orphan existing campaign sinks.
        base = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8})
        assert {base.variant(engine=e).key() for e in engine_registry} == \
            {base.key()}

    def test_cli_engine_switch_resumes_and_overrides_from_json(self, tmp_path, capsys):
        from repro.cli import main

        cfg = tmp_path / "campaign.json"
        cfg.write_text(json.dumps({"grid": {
            "protocols": ["coloring"],
            "topologies": [{"name": "ring", "params": {"n": 8}}],
            "seeds": [0, 1],
        }}))
        out = tmp_path / "results.jsonl"
        assert main(["campaign", "--from-json", str(cfg),
                     "--out", str(out), "--quiet"]) == 0
        # Same campaign under a different engine: the --engine override
        # applies to the loaded specs and every trial resumes.
        assert main(["campaign", "--from-json", str(cfg), "--engine", "scan",
                     "--out", str(out), "--quiet"]) == 0
        assert "2 resumed" in capsys.readouterr().out


class TestTrialResultSerialization:
    def test_round_trip(self):
        result = ExperimentSpec(
            protocol="coloring", topology="ring", topology_params={"n": 8},
        ).run()
        assert TrialResult.from_dict(result.to_dict()) == result


class TestCampaign:
    GRID = dict(
        protocols=["coloring", "mis"],
        topologies=[("ring", {"n": 8}), ("grid", {"rows": 3, "cols": 3})],
        schedulers=["synchronous", "central"],
        seeds=range(2),
    )

    def test_grid_expansion_order_and_size(self):
        campaign = Campaign.grid(**self.GRID)
        assert len(campaign) == 2 * 2 * 2 * 2
        keys = [s.key() for s in campaign]
        assert len(set(keys)) == len(keys)
        # Stable order: protocol-major, seed-minor.
        assert campaign.specs[0].protocol == campaign.specs[7].protocol \
            == "coloring"
        assert [s.seed for s in campaign.specs[:2]] == [0, 1]

    def test_duplicate_specs_rejected(self):
        spec = ExperimentSpec(protocol="coloring", topology="ring",
                              topology_params={"n": 8})
        with pytest.raises(ValueError, match="duplicate"):
            Campaign([spec, spec])

    def test_campaign_json_round_trip(self):
        campaign = Campaign.grid(**self.GRID)
        clone = Campaign.from_json(campaign.to_json())
        assert clone.specs == campaign.specs

    def test_serial_run_streams_jsonl(self, tmp_path):
        sink = tmp_path / "results.jsonl"
        campaign = Campaign.grid(
            protocols=["coloring"], topologies=[("ring", {"n": 8})],
            seeds=range(3),
        )
        outcome = campaign.run(jsonl_path=sink)
        assert outcome.executed == 3 and outcome.skipped == 0
        rows = [json.loads(line) for line in
                sink.read_text().splitlines()]
        assert {row["key"] for row in rows} == \
            {s.key() for s in campaign}
        pairs = load_campaign_results(sink)
        assert [r for _s, r in pairs] == outcome.results

    def test_parallel_equals_serial_row_for_row(self):
        campaign = Campaign.grid(**self.GRID)
        serial = campaign.run(workers=0)
        parallel = campaign.run(workers=2)
        assert serial.results == parallel.results
        assert [s.key() for s in serial.specs] == \
            [s.key() for s in parallel.specs]

    def test_resume_skips_completed_specs(self, tmp_path):
        sink = tmp_path / "results.jsonl"
        campaign = Campaign.grid(**self.GRID)
        # Interrupted first pass: only half the campaign ran.
        first_half = Campaign(campaign.specs[: len(campaign) // 2])
        first = first_half.run(jsonl_path=sink)
        assert first.executed == len(campaign) // 2

        resumed = campaign.run(jsonl_path=sink)
        assert resumed.skipped == len(campaign) // 2
        assert resumed.executed == len(campaign) - resumed.skipped
        # Resumed rows equal fresh rows.
        fresh = campaign.run(jsonl_path=None)
        assert resumed.results == fresh.results

    def test_resume_tolerates_truncated_line(self, tmp_path):
        sink = tmp_path / "results.jsonl"
        campaign = Campaign.grid(
            protocols=["coloring"], topologies=[("ring", {"n": 8})],
            seeds=range(2),
        )
        campaign.run(jsonl_path=sink)
        lines = sink.read_text().splitlines()
        sink.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        outcome = campaign.run(jsonl_path=sink)
        assert outcome.skipped == 1 and outcome.executed == 1

    def test_no_resume_reruns_everything(self, tmp_path):
        sink = tmp_path / "results.jsonl"
        campaign = Campaign.grid(
            protocols=["coloring"], topologies=[("ring", {"n": 8})],
            seeds=range(2),
        )
        campaign.run(jsonl_path=sink)
        outcome = campaign.run(jsonl_path=sink, resume=False)
        assert outcome.executed == 2 and outcome.skipped == 0
        # The sink was started over, not appended: no duplicate rows.
        assert len(sink.read_text().splitlines()) == 2
        assert len(load_campaign_results(sink)) == 2

    def test_progress_callback_sees_every_spec(self, tmp_path):
        sink = tmp_path / "results.jsonl"
        campaign = Campaign.grid(
            protocols=["coloring"], topologies=[("ring", {"n": 8})],
            seeds=range(2),
        )
        campaign.run(jsonl_path=sink, resume=False)
        seen = []
        campaign.run(jsonl_path=sink,
                     progress=lambda s, r: seen.append(s.key()))
        assert sorted(seen) == sorted(s.key() for s in campaign)


class TestSchedulerStateIsolation:
    def test_simulator_resets_scheduler_on_build(self):
        scheduler = RoundRobinScheduler()
        net = ring(6)
        sim1 = Simulator(ColoringProtocol.for_network(net), net,
                         scheduler=scheduler, seed=1)
        sim1.run_until_silent(max_rounds=1000)
        assert scheduler._next > 0
        # Reusing the same scheduler object must not carry the pointer.
        sim2 = Simulator(ColoringProtocol.for_network(net), net,
                         scheduler=scheduler, seed=1)
        assert scheduler._next == 0
        record = sim2.step()
        assert record.activated == frozenset([net.processes[0]])

    def test_reused_scheduler_gives_identical_trials(self):
        scheduler = RoundRobinScheduler()
        net = ring(6)
        proto = ColoringProtocol.for_network(net)
        a = run_trial(proto, net, scheduler=scheduler, seed=3)
        b = run_trial(proto, net, scheduler=scheduler, seed=3)
        assert a == b


class TestTopLevelExports:
    def test_api_names_exported_from_repro(self):
        for name in ("Campaign", "CampaignOutcome", "ExperimentSpec",
                     "protocol_registry", "topology_registry",
                     "scheduler_registry", "register_protocol",
                     "register_topology", "register_scheduler",
                     "load_campaign_results"):
            assert hasattr(repro, name), name
            assert name in repro.__all__
