"""Tests for protocol MIS (Figure 8, Theorems 5–6, Lemmas 3–4)."""

import pytest

from repro.analysis import mis_round_bound, mis_stability_bound
from repro.core import Simulator
from repro.graphs import (
    chain,
    clique,
    figure9_path,
    greedy_coloring,
    grid,
    random_connected,
    random_tree,
    ring,
    star,
)
from repro.predicates import (
    DOMINATOR,
    dominators,
    is_maximal_independent_set,
    mis_predicate,
)
from repro.protocols import MISProtocol

FAMILIES = {
    "chain8": lambda: chain(8),
    "ring9": lambda: ring(9),
    "star6": lambda: star(6),
    "clique5": lambda: clique(5),
    "grid3x4": lambda: grid(3, 4),
    "gnp16": lambda: random_connected(16, 0.3, seed=2),
    "tree12": lambda: random_tree(12, seed=4),
}


def make(net):
    return MISProtocol(net, greedy_coloring(net))


class TestStructure:
    def test_variable_kinds(self):
        net = chain(3)
        proto = make(net)
        kinds = {s.name: s.kind for s in proto.variables(net, 1)}
        assert kinds == {"S": "comm", "C": "const", "cur": "internal"}

    def test_rejects_improper_coloring(self):
        net = chain(3)
        from repro.core.exceptions import TopologyError

        with pytest.raises(TopologyError):
            MISProtocol(net, {0: 1, 1: 1, 2: 1})

    def test_action_priority_order(self):
        net = chain(3)
        names = [a.name for a in make(net).actions()]
        assert names == ["yield", "claim", "patrol"]

    def test_output_function(self):
        net = chain(2)
        proto = MISProtocol(net, {0: 1, 1: 2})
        config = proto.arbitrary_configuration(net)
        config.set(0, "S", DOMINATOR)
        assert proto.in_mis(config, 0)


class TestStabilization:
    """Theorem 5: stabilizes to the MIS predicate, deterministically."""

    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stabilizes(self, family, seed):
        net = FAMILIES[family]()
        proto = make(net)
        sim = Simulator(proto, net, seed=seed)
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.stabilized

    def test_stabilizes_under_every_scheduler(self, any_scheduler):
        net = random_connected(12, 0.3, seed=6)
        sim = Simulator(make(net), net, scheduler=any_scheduler, seed=3)
        assert sim.run_until_silent(max_rounds=50_000).stabilized

    def test_result_is_maximal_independent_set(self):
        net = random_connected(15, 0.3, seed=8)
        proto = make(net)
        sim = Simulator(proto, net, seed=1)
        sim.run_until_silent(max_rounds=20_000)
        assert is_maximal_independent_set(
            net, proto.independent_set(net, sim.config)
        )

    def test_deterministic_replay(self):
        net = random_connected(12, 0.3, seed=7)
        outcomes = []
        for _ in range(2):
            sim = Simulator(make(net), net, seed=42)
            sim.run_until_silent(max_rounds=20_000)
            outcomes.append(dominators(net, sim.config))
        assert outcomes[0] == outcomes[1]

    def test_local_minima_always_dominate(self):
        """Lemma 4's base case: rank-0 processes end as Dominators."""
        from repro.graphs import local_minima

        net = random_connected(14, 0.3, seed=3)
        colors = greedy_coloring(net)
        proto = MISProtocol(net, colors)
        sim = Simulator(proto, net, seed=5)
        sim.run_until_silent(max_rounds=20_000)
        doms = dominators(net, sim.config)
        for p in local_minima(net, colors):
            assert p in doms


class TestRoundBound:
    """Lemma 4: silence within Δ·#C rounds (under synchronous steps the
    round count is exact and the bound must hold)."""

    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_rounds_within_bound(self, family, seed):
        net = FAMILIES[family]()
        colors = greedy_coloring(net)
        proto = MISProtocol(net, colors)
        sim = Simulator(proto, net, seed=seed)
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.rounds <= mis_round_bound(net, colors)


class TestSilenceProperties:
    """Lemma 3: silent configurations satisfy the MIS predicate."""

    @pytest.mark.parametrize("seed", range(4))
    def test_silent_implies_legitimate(self, seed):
        net = random_connected(12, 0.35, seed=seed)
        proto = make(net)
        sim = Simulator(proto, net, seed=seed + 10)
        report = sim.run_until_silent(max_rounds=20_000)
        assert report.silent and report.legitimate

    def test_comm_state_frozen_after_silence(self):
        net = random_connected(12, 0.3, seed=11)
        proto = make(net)
        sim = Simulator(proto, net, seed=4)
        sim.run_until_silent(max_rounds=20_000)
        specs = proto.specs_of(net)
        before = sim.config.comm_projection(specs)
        sim.run_rounds(15)
        assert sim.config.comm_projection(specs) == before


class TestEfficiencyAndStability:
    def test_one_efficient(self, any_scheduler):
        net = random_connected(12, 0.3, seed=2)
        sim = Simulator(make(net), net, scheduler=any_scheduler, seed=6)
        sim.run_until_silent(max_rounds=50_000)
        assert sim.metrics.observed_k_efficiency() == 1

    @pytest.mark.parametrize(
        "maker", [lambda: figure9_path(7), lambda: chain(10), lambda: ring(8)],
        ids=["fig9", "chain10", "ring8"],
    )
    def test_stability_bound_theorem6(self, maker):
        """♦-(⌊(L_max+1)/2⌋, 1)-stability: at least that many processes
        eventually read a single neighbor forever."""
        net = maker()
        proto = make(net)
        sim = Simulator(proto, net, seed=3)
        sim.run_until_silent(max_rounds=20_000)
        suffix = sim.measure_suffix_stability(extra_rounds=25)
        one_stable = sum(1 for ports in suffix.values() if len(ports) <= 1)
        bound, exact = mis_stability_bound(net)
        assert exact
        assert one_stable >= bound

    def test_dominated_are_the_stable_ones(self):
        """Theorem 6's mechanism: dominated processes freeze on their
        Dominator, Dominators keep patrolling all neighbors."""
        net = chain(9)
        proto = make(net)
        sim = Simulator(proto, net, seed=3)
        sim.run_until_silent(max_rounds=20_000)
        doms = dominators(net, sim.config)
        suffix = sim.measure_suffix_stability(extra_rounds=25)
        for p in net.processes:
            if p in doms:
                assert len(suffix[p]) == net.degree(p)
            else:
                assert len(suffix[p]) <= 1

    def test_dominated_watch_a_dominator(self):
        net = chain(9)
        proto = make(net)
        sim = Simulator(proto, net, seed=3)
        sim.run_until_silent(max_rounds=20_000)
        doms = dominators(net, sim.config)
        for p in net.processes:
            if p not in doms:
                watched = net.neighbor_at(p, sim.config.get(p, "cur"))
                assert watched in doms
