"""Unit tests for color-induced dag orientations (Theorem 4)."""

import networkx as nx
import pytest

from repro.graphs import (
    chain,
    clique,
    color_orientation,
    color_rank,
    dsatur_coloring,
    greedy_coloring,
    local_minima,
    orientation_successors,
    random_connected,
    ring,
    verify_theorem4,
)


class TestTheorem4:
    @pytest.mark.parametrize("seed", range(6))
    def test_orientation_is_always_acyclic(self, seed):
        net = random_connected(18, 0.3, seed=seed)
        assert verify_theorem4(net, greedy_coloring(net))

    def test_every_edge_oriented_once(self):
        net = ring(8)
        colors = greedy_coloring(net)
        digraph = color_orientation(net, colors)
        assert digraph.number_of_edges() == net.m

    def test_orientation_follows_color_order(self):
        net = chain(4)
        colors = {0: 1, 1: 2, 2: 3, 3: 1}
        digraph = color_orientation(net, colors)
        assert digraph.has_edge(0, 1)
        assert digraph.has_edge(1, 2)
        assert digraph.has_edge(3, 2)

    def test_clique_orientation_is_total_order(self):
        net = clique(4)
        colors = dsatur_coloring(net)
        digraph = color_orientation(net, colors)
        order = list(nx.topological_sort(digraph))
        for i, p in enumerate(order):
            for q in order[i + 1:]:
                assert digraph.has_edge(p, q)


class TestHelpers:
    def test_successors_match_digraph(self):
        net = random_connected(12, 0.3, seed=2)
        colors = greedy_coloring(net)
        digraph = color_orientation(net, colors)
        succ = orientation_successors(net, colors)
        for p in net.processes:
            assert succ[p] == frozenset(digraph.successors(p))

    def test_local_minima_exist(self):
        net = random_connected(12, 0.3, seed=4)
        colors = greedy_coloring(net)
        minima = local_minima(net, colors)
        assert minima  # a finite order always has a local minimum

    def test_local_minima_are_sources(self):
        net = random_connected(12, 0.3, seed=4)
        colors = greedy_coloring(net)
        digraph = color_orientation(net, colors)
        for p in local_minima(net, colors):
            assert digraph.in_degree(p) == 0

    def test_color_rank(self):
        ranks = color_rank({0: 5, 1: 2, 2: 5, 3: 9})
        assert ranks == {0: 1, 1: 0, 2: 1, 3: 2}
