"""Unit tests for variable domains and declarations."""

import math
import random

import pytest

from repro.core.variables import (
    BOOL,
    FiniteSet,
    IntRange,
    VariableSpec,
    comm,
    const,
    internal,
)


class TestIntRange:
    def test_contains_endpoints(self):
        d = IntRange(1, 5)
        assert 1 in d and 5 in d

    def test_excludes_outside(self):
        d = IntRange(1, 5)
        assert 0 not in d and 6 not in d

    def test_excludes_non_ints(self):
        d = IntRange(1, 5)
        assert 1.5 not in d
        assert "1" not in d

    def test_iteration_order(self):
        assert list(IntRange(2, 4)) == [2, 3, 4]

    def test_len(self):
        assert len(IntRange(0, 7)) == 8

    def test_singleton(self):
        d = IntRange(3, 3)
        assert list(d) == [3]
        assert d.bits == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            IntRange(5, 4)

    def test_bits_matches_log2(self):
        assert IntRange(1, 8).bits == pytest.approx(3.0)
        assert IntRange(1, 5).bits == pytest.approx(math.log2(5))

    def test_sample_in_domain(self):
        d = IntRange(3, 9)
        r = random.Random(0)
        assert all(d.sample(r) in d for _ in range(50))

    def test_sample_covers_domain(self):
        d = IntRange(1, 4)
        r = random.Random(1)
        assert {d.sample(r) for _ in range(200)} == {1, 2, 3, 4}


class TestFiniteSet:
    def test_contains(self):
        d = FiniteSet(("a", "b"))
        assert "a" in d and "c" not in d

    def test_len_and_iter(self):
        d = FiniteSet((10, 20, 30))
        assert len(d) == 3
        assert list(d) == [10, 20, 30]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FiniteSet(())

    def test_bool_domain(self):
        assert True in BOOL and False in BOOL
        assert BOOL.bits == pytest.approx(1.0)

    def test_sample(self):
        d = FiniteSet(("x", "y"))
        r = random.Random(2)
        assert {d.sample(r) for _ in range(50)} == {"x", "y"}


class TestVariableSpec:
    def test_comm_readable_and_writable(self):
        spec = comm("C", IntRange(1, 3))
        assert spec.readable_by_neighbors and spec.writable

    def test_internal_private(self):
        spec = internal("cur", IntRange(1, 3))
        assert not spec.readable_by_neighbors and spec.writable

    def test_const_readonly(self):
        spec = const("C", IntRange(1, 3))
        assert spec.readable_by_neighbors and not spec.writable

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            VariableSpec("x", BOOL, "shared")
