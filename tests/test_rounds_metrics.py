"""Unit tests for round tracking and the metrics collector."""

import pytest

from repro.core.metrics import MetricsCollector, StepRecord
from repro.core.rounds import RoundTracker


class TestRoundTracker:
    def test_round_completes_when_all_selected(self):
        t = RoundTracker([0, 1, 2])
        assert not t.record_step([0])
        assert not t.record_step([1])
        assert t.record_step([2])
        assert t.completed_rounds == 1

    def test_synchronous_one_step_per_round(self):
        t = RoundTracker([0, 1, 2])
        for i in range(5):
            assert t.record_step([0, 1, 2])
        assert t.completed_rounds == 5

    def test_repeated_selection_does_not_advance(self):
        t = RoundTracker([0, 1])
        for _ in range(10):
            t.record_step([0])
        assert t.completed_rounds == 0
        assert t.pending == {1}

    def test_overlap_counts_once(self):
        t = RoundTracker([0, 1, 2])
        t.record_step([0, 1])
        assert t.record_step([1, 2])
        assert t.completed_rounds == 1

    def test_reset(self):
        t = RoundTracker([0, 1])
        t.record_step([0, 1])
        t.record_step([0])
        t.reset()
        assert t.completed_rounds == 0 and t.pending == {0, 1}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RoundTracker([])


def _record(i, reads, closed=False, bits=None):
    return StepRecord(
        index=i,
        activated=frozenset(reads),
        executed={p: "a" for p in reads},
        ports_read={p: frozenset(ports) for p, ports in reads.items()},
        bits_read=bits or {p: float(len(ports)) for p, ports in reads.items()},
        closed_round=closed,
    )


class TestMetricsCollector:
    def test_k_efficiency_is_max_over_steps(self):
        m = MetricsCollector([0, 1])
        m.record(_record(0, {0: {1}, 1: {1, 2}}))
        m.record(_record(1, {0: {2}}))
        assert m.observed_k_efficiency() == 2

    def test_k_stability_accumulates_distinct_ports(self):
        m = MetricsCollector([0])
        m.record(_record(0, {0: {1}}))
        m.record(_record(1, {0: {2}}))
        m.record(_record(2, {0: {1}}))
        assert m.observed_stability() == 2

    def test_rounds_counted(self):
        m = MetricsCollector([0])
        m.record(_record(0, {0: {1}}, closed=True))
        m.record(_record(1, {0: {1}}, closed=False))
        m.record(_record(2, {0: {1}}, closed=True))
        assert m.rounds == 2 and m.steps == 3

    def test_bits_max_and_total(self):
        m = MetricsCollector([0, 1])
        m.record(_record(0, {0: {1}, 1: {1, 2}}, bits={0: 2.0, 1: 5.0}))
        assert m.max_bits_in_step == pytest.approx(5.0)
        assert m.total_bits == pytest.approx(7.0)

    def test_suffix_tracking(self):
        m = MetricsCollector([0, 1])
        m.record(_record(0, {0: {1, 2}, 1: {1}}))
        m.start_suffix()
        m.record(_record(1, {0: {1}}))
        stable = m.suffix_stable_processes(k=1)
        # 0 read only port 1 in the suffix; 1 read nothing.
        assert set(stable) == {0, 1}

    def test_suffix_requires_arming(self):
        m = MetricsCollector([0])
        with pytest.raises(RuntimeError):
            m.suffix_stable_processes()

    def test_activation_counts(self):
        m = MetricsCollector([0, 1])
        m.record(_record(0, {0: set()}))
        m.record(_record(1, {0: set(), 1: set()}))
        assert m.activations == {0: 2, 1: 1}

    def test_summary_keys(self):
        m = MetricsCollector([0])
        m.record(_record(0, {0: {1}}, closed=True))
        s = m.summary()
        assert {"steps", "rounds", "k_efficiency", "max_bits_per_step",
                "total_bits", "total_reads"} <= set(s)
