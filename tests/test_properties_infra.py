"""Property-based tests for the infrastructure layers.

Hypothesis-driven invariants on tracing, serialization, tables and the
message emulation — the parts of the library whose correctness is about
data handling rather than protocol theory.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Trace, record_run, verify_replay
from repro.core.serialization import (
    configuration_from_json,
    configuration_to_json,
    decode_pid,
    encode_pid,
)
from repro.core.state import Configuration
from repro.experiments import format_csv, format_markdown_table, format_table
from repro.graphs import random_connected
from repro.mp import PullEmulator
from repro.protocols import ColoringProtocol
from repro.viz import sparkline

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

pid_strategy = st.recursive(
    st.one_of(
        st.integers(min_value=-100, max_value=100),
        st.text(min_size=1, max_size=6),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=4,
)


class TestPidEncodingProperties:
    @given(pid_strategy)
    @FAST
    def test_roundtrip(self, pid):
        assert decode_pid(encode_pid(pid)) == pid


class TestConfigurationSerializationProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=20),
            st.dictionaries(
                st.sampled_from(["C", "S", "PR", "M", "cur"]),
                st.one_of(st.integers(-5, 5), st.booleans(),
                          st.sampled_from(["Dominator", "dominated"])),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @FAST
    def test_json_roundtrip_any_states(self, states):
        config = Configuration(states)
        again = configuration_from_json(configuration_to_json(config))
        assert again == config


class TestTraceProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=40))
    @FAST
    def test_trace_roundtrip_and_replay(self, seed, steps):
        net = random_connected(8, 0.4, seed=2)
        factory = lambda: ColoringProtocol.for_network(net)
        trace = record_run(factory(), net, seed=seed, steps=steps)
        assert Trace.from_jsonl(trace.to_jsonl()).events == trace.events
        assert verify_replay(factory, net, trace)

    @given(st.integers(min_value=0, max_value=10_000))
    @FAST
    def test_trace_k_efficiency_never_exceeds_one(self, seed):
        net = random_connected(8, 0.4, seed=2)
        trace = record_run(
            ColoringProtocol.for_network(net), net, seed=seed, steps=30
        )
        assert trace.k_efficiency() <= 1


class TestTableProperties:
    cells = st.one_of(
        st.integers(-10**6, 10**6),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.booleans(),
        st.text(max_size=12).filter(str.isprintable),
    )

    @given(st.integers(1, 5), st.integers(0, 6), st.data())
    @FAST
    def test_renderers_cover_all_rows(self, cols, nrows, data):
        headers = [f"h{i}" for i in range(cols)]
        rows = [
            [data.draw(self.cells) for _ in range(cols)] for _ in range(nrows)
        ]
        ascii_out = format_table(headers, rows)
        md = format_markdown_table(headers, rows)
        csv_out = format_csv(headers, rows)
        assert len(ascii_out.splitlines()) == 2 + nrows
        assert len(md.splitlines()) == 2 + nrows
        assert len(csv_out.strip().splitlines()) == 1 + nrows

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), max_size=40))
    @FAST
    def test_sparkline_length(self, values):
        assert len(sparkline(values)) == len(values)


class TestPullEmulationProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=6))
    @FAST
    def test_messages_exactly_twice_reads(self, seed, rounds):
        net = random_connected(8, 0.4, seed=5)
        emu = PullEmulator(ColoringProtocol.for_network(net), net, seed=seed)
        emu.run_rounds(rounds)
        assert emu.stats.messages == 2 * emu.sim.metrics.total_reads
