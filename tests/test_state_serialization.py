"""Tests for Configuration behaviour and JSON checkpointing."""

import pytest

from repro.core import Configuration, DomainError, Simulator
from repro.core.serialization import (
    configuration_from_json,
    configuration_to_json,
    decode_pid,
    encode_pid,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.variables import IntRange, comm, internal
from repro.graphs import chain, grid
from repro.protocols import ColoringProtocol


class TestConfiguration:
    def test_equality_is_by_value(self):
        a = Configuration({0: {"C": 1}, 1: {"C": 2}})
        b = Configuration({0: {"C": 1}, 1: {"C": 2}})
        c = Configuration({0: {"C": 1}, 1: {"C": 3}})
        assert a == b and a != c

    def test_copy_is_independent(self):
        a = Configuration({0: {"C": 1}})
        b = a.copy()
        b.set(0, "C", 9)
        assert a.get(0, "C") == 1

    def test_constructor_copies_input(self):
        states = {0: {"C": 1}}
        a = Configuration(states)
        states[0]["C"] = 7
        assert a.get(0, "C") == 1

    def test_comm_projection_hides_internal(self):
        specs = {0: (comm("C", IntRange(1, 3)), internal("cur", IntRange(1, 2)))}
        config = Configuration({0: {"C": 2, "cur": 1}})
        proj = config.comm_projection(specs)
        assert proj[0] == (("C", 2),)

    def test_comm_state_of_is_hashable(self):
        specs = (comm("C", IntRange(1, 3)), internal("cur", IntRange(1, 2)))
        config = Configuration({0: {"C": 2, "cur": 1}})
        state = config.comm_state_of(0, specs)
        assert hash(state) == hash((("C", 2),))

    def test_validate_missing_variable(self):
        specs = {0: (comm("C", IntRange(1, 3)),)}
        config = Configuration({0: {}})
        with pytest.raises(DomainError):
            config.validate(specs)

    def test_validate_out_of_domain(self):
        specs = {0: (comm("C", IntRange(1, 3)),)}
        config = Configuration({0: {"C": 9}})
        with pytest.raises(DomainError):
            config.validate(specs)

    def test_as_dict_detached(self):
        a = Configuration({0: {"C": 1}})
        d = a.as_dict()
        d[0]["C"] = 5
        assert a.get(0, "C") == 1


class TestPidEncoding:
    @pytest.mark.parametrize(
        "pid", [0, -3, "c", ("m", 1), ("l", 2, 3), (("a", 1), "b"), True, None]
    )
    def test_roundtrip(self, pid):
        assert decode_pid(encode_pid(pid)) == pid

    def test_bool_not_confused_with_int(self):
        assert decode_pid(encode_pid(True)) is True
        assert decode_pid(encode_pid(1)) == 1

    def test_unsupported_type_raises(self):
        from repro.core.exceptions import ModelError

        with pytest.raises(ModelError):
            encode_pid(object())


class TestCheckpointing:
    def test_json_roundtrip_int_ids(self):
        net = chain(4)
        proto = ColoringProtocol.for_network(net)
        config = proto.arbitrary_configuration(net)
        again = configuration_from_json(configuration_to_json(config))
        assert again == config

    def test_json_roundtrip_tuple_ids(self):
        net = grid(3, 3)  # ids are (row, col) tuples
        proto = ColoringProtocol.for_network(net)
        config = proto.arbitrary_configuration(net)
        again = configuration_from_json(configuration_to_json(config))
        assert again == config

    def test_file_checkpoint(self, tmp_path):
        net = chain(5)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=3)
        sim.run_until_silent(max_rounds=10_000)
        path = tmp_path / "silent.json"
        save_checkpoint(sim.config, str(path))
        restored = load_checkpoint(str(path))
        assert restored == sim.config

    def test_restored_checkpoint_resumes_silent(self, tmp_path):
        """A checkpoint of a silent configuration restarts silent."""
        net = chain(5)
        proto = ColoringProtocol.for_network(net)
        sim = Simulator(proto, net, seed=3)
        sim.run_until_silent(max_rounds=10_000)
        path = tmp_path / "silent.json"
        save_checkpoint(sim.config, str(path))
        sim2 = Simulator(proto, net, seed=0, config=load_checkpoint(str(path)))
        assert sim2.is_silent()
