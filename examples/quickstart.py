"""Quickstart: self-stabilizing vertex coloring with one read per step.

Runs protocol COLORING (paper Fig. 7) on an anonymous ring from a
uniformly corrupted configuration, proves silence with the quiescence
checker, and prints the communication metrics the paper introduces.

The experiment is *declared*, not hand-wired: protocol and topology are
registry names, the whole trial is a JSON-serializable
:class:`repro.ExperimentSpec`, and the live simulator is built from it
on demand.

Run:  python examples/quickstart.py
"""

from repro import ExperimentSpec
from repro.analysis import (
    coloring_communication_bits,
    traditional_coloring_communication_bits,
)


def main() -> None:
    spec = ExperimentSpec(
        protocol="coloring",          # palette {1..Δ+1}
        topology="ring",
        topology_params={"n": 12},
        seed=2026,
        max_rounds=10_000,
    )
    print(f"spec: {spec.to_json()}")

    sim = spec.build_simulator()
    report = sim.run_until_silent(max_rounds=spec.max_rounds)
    network = sim.network

    print(f"network: ring of {network.n}, Δ = {network.max_degree}")
    print(f"stabilized: {report.stabilized} after {report.rounds} rounds "
          f"({report.steps} steps)")
    print("final colors:",
          [sim.config.get(p, 'C') for p in network.processes])

    k = sim.metrics.observed_k_efficiency()
    print(f"observed k-efficiency: {k}  (Definition 4 — the paper proves 1)")

    delta = network.max_degree
    print(f"bits read per step: {sim.metrics.max_bits_in_step:.2f} "
          f"(paper formula log(Δ+1) = {coloring_communication_bits(delta):.2f}; "
          f"a traditional protocol needs Δ·log(Δ+1) = "
          f"{traditional_coloring_communication_bits(delta):.2f})")

    assert report.stabilized and k == 1

    # The same spec as a one-shot, no simulator in sight:
    result = spec.run()
    print(f"declarative re-run: rounds={result.rounds} "
          f"k-efficiency={result.k_efficiency} silent={result.silent}")
    assert result.rounds == report.rounds


if __name__ == "__main__":
    main()
