"""Quickstart: self-stabilizing vertex coloring with one read per step.

Runs protocol COLORING (paper Fig. 7) on an anonymous ring from a
uniformly corrupted configuration, proves silence with the quiescence
checker, and prints the communication metrics the paper introduces.

Run:  python examples/quickstart.py
"""

from repro import ColoringProtocol, Simulator, ring
from repro.analysis import (
    coloring_communication_bits,
    traditional_coloring_communication_bits,
)


def main() -> None:
    network = ring(12)
    protocol = ColoringProtocol.for_network(network)  # palette {1..Δ+1}

    sim = Simulator(protocol, network, seed=2026)
    report = sim.run_until_silent(max_rounds=10_000)

    print(f"network: ring of {network.n}, Δ = {network.max_degree}")
    print(f"stabilized: {report.stabilized} after {report.rounds} rounds "
          f"({report.steps} steps)")
    print("final colors:",
          [sim.config.get(p, 'C') for p in network.processes])

    k = sim.metrics.observed_k_efficiency()
    print(f"observed k-efficiency: {k}  (Definition 4 — the paper proves 1)")

    delta = network.max_degree
    print(f"bits read per step: {sim.metrics.max_bits_in_step:.2f} "
          f"(paper formula log(Δ+1) = {coloring_communication_bits(delta):.2f}; "
          f"a traditional protocol needs Δ·log(Δ+1) = "
          f"{traditional_coloring_communication_bits(delta):.2f})")

    assert report.stabilized and k == 1


if __name__ == "__main__":
    main()
