"""A whole experimental campaign from pure data — no objects in sight.

The paper's results come from sweeping protocols × topologies ×
schedulers × seeds.  This script declares such a sweep as a JSON
document (the same thing ``python -m repro campaign --from-json`` eats),
fans it out over a process pool, streams one JSON line per trial to a
sink file, then interrupts itself and shows that a re-run *resumes* —
completed trials are loaded from the sink, not recomputed.

Run:  python examples/campaign_from_json.py
"""

import json
import os
import tempfile

from repro import Campaign

CAMPAIGN_JSON = json.dumps({
    "grid": {
        "protocols": ["coloring", "mis", "matching"],
        "topologies": [
            {"name": "ring", "params": {"n": 16}},
            {"name": "grid", "params": {"rows": 4, "cols": 4}},
            {"name": "gnp", "params": {"n": 18, "p": 0.2, "seed": 3}},
        ],
        "schedulers": [
            "synchronous",
            "central",
            {"name": "locally-central", "params": {"p_act": 0.6}},
        ],
        "seeds": [0, 1],
        "max_rounds": 50000,
    }
})


def main() -> None:
    campaign = Campaign.from_json(CAMPAIGN_JSON)
    print(f"campaign from JSON: {len(campaign)} specs "
          f"(3 protocols x 3 topologies x 3 schedulers x 2 seeds)")

    sink = os.path.join(tempfile.mkdtemp(prefix="repro-campaign-"),
                        "results.jsonl")

    # First pass: run only part of the campaign, as if we were killed.
    partial = Campaign(list(campaign)[: len(campaign) // 2])
    partial.run(jsonl_path=sink, workers=2)
    with open(sink, encoding="utf-8") as fh:
        done = sum(1 for _ in fh)
    print(f"interrupted after {done} trials -> {sink}")

    # Second pass: same campaign, same sink — completed specs are
    # skipped, the rest fan out over the pool.
    outcome = campaign.run(jsonl_path=sink, workers=2)
    print(f"resumed: {outcome.skipped} loaded from sink, "
          f"{outcome.executed} executed")
    assert outcome.skipped == done and len(outcome) == len(campaign)

    stabilized = sum(1 for r in outcome.results if r.legitimate and r.silent)
    worst = max(outcome.results, key=lambda r: r.rounds)
    print(f"{stabilized}/{len(outcome)} trials stabilized; "
          f"slowest: {worst.protocol} in {worst.rounds} rounds "
          f"(k-efficiency {worst.k_efficiency})")
    assert stabilized == len(outcome)


if __name__ == "__main__":
    main()
