"""A guided tour of the impossibility constructions (Theorems 1 and 2).

Shows, concretely, why no protocol can settle on reading fewer than all
neighbors *everywhere*: we give a 1-stable strawman coloring protocol
its best shot, then run the paper's splicing construction against it.
The manufactured configuration is silent (proved by the quiescence
checker), violates the coloring predicate on an edge nobody reads, and
the system sits there forever.  Protocol COLORING, restarted from the
exact same trap, escapes — its round-robin pointer eventually looks at
the bad edge.

Run:  python examples/impossibility_tour.py
"""

from repro.core import Configuration, Simulator
from repro.impossibility import (
    theorem1_gadget_demo,
    theorem1_overlay_demo,
    theorem1_splice_demo,
    theorem2_demo,
    theorem2_gadget_demo,
)
from repro.protocols import ColoringProtocol


def show(demo) -> None:
    report = demo.verify(rounds=25, seed=3)
    colors = {p: demo.config.get(p, "C") for p in demo.network.processes}
    print(f"- {demo.name}: trap edge {demo.trap_edge}, "
          f"colors {colors[demo.trap_edge[0]]}={colors[demo.trap_edge[1]]}")
    print(f"    silent={report.silent}  legitimate={report.legitimate}  "
          f"comm changed over {report.steps_run} steps={report.comm_changed}")
    assert report.demonstrates_impossibility


def main() -> None:
    print("Theorem 1 — anonymous networks, ♦-k-stable, k < Δ:")
    show(theorem1_overlay_demo())
    show(theorem1_splice_demo())
    show(theorem1_gadget_demo(delta=3))

    print("\nTheorem 2 — even rooted + dag-oriented, k-stable, k < Δ:")
    show(theorem2_demo())
    show(theorem2_gadget_demo(delta=3))

    print("\nContrast — protocol COLORING escapes the same trap:")
    demo = theorem1_overlay_demo()
    protocol = ColoringProtocol(palette_size=3)
    config = Configuration(
        {p: {"C": demo.config.get(p, "C"), "cur": 1}
         for p in demo.network.processes}
    )
    sim = Simulator(protocol, demo.network, seed=17, config=config)
    report = sim.run_until_silent(max_rounds=10_000)
    print(f"  COLORING from the trap: stabilized={report.stabilized} "
          f"in {report.rounds} rounds (1-efficient, but it never stops "
          f"cycling through neighbors — exactly what the theorem permits)")
    assert report.stabilized


if __name__ == "__main__":
    main()
