"""The campaign fabric end to end: shard, crash, recover, serve.

A paper-sized grid wants many processes; a long run wants to survive
worker deaths; a running campaign wants to be observable before it
finishes. This script does all three on a deliberately small grid:

1. a campaign runs through the fabric coordinator — sharded over
   worker subprocesses — with one worker *chaos-killed* after its
   first trial (``chaos_kills=1``), so the requeue/recovery path is
   exercised, not just described;
2. the same grid runs serially into a second store run, and the two
   are compared key by key — the fabric's core invariant is that the
   trial sets are identical;
3. the live results service answers ``/health``, ``/query`` and a
   canned paper table over HTTP while both runs sit in one store.

Run:  python examples/fabric_campaign.py
"""

import json
import os
import tempfile
import urllib.request

from repro import Campaign, ResultService, ResultStore, run_fabric


def build_campaign() -> Campaign:
    return Campaign.grid(
        protocols=["coloring", "mis"],
        topologies=[("ring", {"n": 8})],
        schedulers=["synchronous"],
        seeds=range(6),
    )


def fabric_with_injected_death(campaign: Campaign, store: str) -> None:
    """Shard the grid over 2 workers; kill one after its first trial."""
    outcome = run_fabric(
        campaign, store, run_id="fabric",
        workers=2, shards=3, chaos_kills=1,
        progress=lambda message: print(f"  {message}"),
    )
    assert outcome.ok, f"missing keys: {outcome.missing}"
    assert outcome.requeued >= 1, "the injected death must requeue"
    print(f"fabric: {outcome.executed} trials, "
          f"{outcome.requeued} shard(s) recovered after a worker death")


def serial_baseline(campaign: Campaign, store: str) -> None:
    campaign.run(out=store, sink="sqlite", run_id="serial")
    print(f"serial: {len(campaign)} trials into the same store")


def prove_parity(store: str) -> None:
    """The invariant: fabric ≡ serial, trial for trial."""
    with ResultStore(store) as result_store:
        fabric = {key: result for key, _spec, result
                  in result_store.raw_trials("fabric")}
        serial = {key: result for key, _spec, result
                  in result_store.raw_trials("serial")}
    assert fabric == serial
    print(f"parity: {len(fabric)} trials identical across "
          f"fabric and serial runs")


def query_over_http(store: str) -> None:
    """The store is live: serve it and ask questions over HTTP."""
    with ResultService(store) as service:
        with urllib.request.urlopen(service.url + "/health") as response:
            health = json.loads(response.read())
        print(f"service at {service.url}: {health['runs']} runs, "
              f"{health['trials']} trials")
        query = "/query?metrics=rounds&group_by=protocol&run=fabric"
        with urllib.request.urlopen(service.url + query) as response:
            groups = json.loads(response.read())["groups"]
        for group in groups:
            rounds = group["aggregates"]["rounds"]
            print(f"  {group['group']['protocol']}: "
                  f"mean rounds {rounds['mean']:.1f} "
                  f"± {rounds['ci95']:.1f} over {group['count']} trials")
        request = urllib.request.Request(
            service.url + "/report?recipe=paper-overhead&run=fabric",
            headers={"Accept": "text/markdown"})
        with urllib.request.urlopen(request) as response:
            print(response.read().decode())


def main() -> None:
    campaign = build_campaign()
    with tempfile.TemporaryDirectory() as directory:
        store = os.path.join(directory, "results.sqlite")
        fabric_with_injected_death(campaign, store)
        serial_baseline(campaign, store)
        prove_parity(store)
        query_over_http(store)


if __name__ == "__main__":
    main()
