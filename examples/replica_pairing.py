"""Scenario: pairing storage replicas with self-stabilizing matching.

A datacenter pairs storage nodes for mutual replication: a maximal
matching of the connectivity graph.  Protocol MATCHING (paper Fig. 10)
maintains the pairing through arbitrary state corruption while each
node reads a single neighbor per step; the Δ-efficient baseline
(Manne et al. style) solves the same problem reading every neighbor.

Both contenders are described declaratively — registry names plus
parameters in an :class:`repro.ExperimentSpec` — and only materialized
into simulators to probe their stabilized phase.

The script runs both on the same topology and compares the paper's
headline metric — bits read per step in the stabilized phase — plus
Theorem 8's guarantee on how many nodes settle into watching only
their partner.

Run:  python examples/replica_pairing.py
"""

from repro import ExperimentSpec
from repro.analysis import matching_round_bound, matching_stability_bound
from repro.predicates import is_maximal_matching, matched_edges

FABRIC = {"n": 20, "d": 4, "seed": 8}   # 4-regular storage fabric


def spec_for(protocol: str) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=protocol,
        topology="regular",
        topology_params=FABRIC,
        seed=31,
        max_rounds=100_000,
    )


def stabilized_bits_per_step(spec: ExperimentSpec):
    """Run to silence, then measure the stabilized-phase read cost."""
    sim = spec.build_simulator()
    report = sim.run_until_silent(max_rounds=spec.max_rounds)
    sim.metrics.max_bits_in_step = 0.0
    sim.metrics.max_reads_in_step = 0
    sim.run_rounds(10)
    return sim, report


def main() -> None:
    sim1, rep1 = stabilized_bits_per_step(spec_for("matching"))
    simb, repb = stabilized_bits_per_step(spec_for("matching-full"))
    network = sim1.network
    print(f"storage fabric: n = {network.n}, 4-regular, m = {network.m}")

    pairs = matched_edges(network, sim1.config)
    assert is_maximal_matching(network, pairs)
    print(f"MATCHING paired {2 * len(pairs)}/{network.n} replicas in "
          f"{rep1.rounds} rounds (Lemma 9 bound (Δ+1)n+2 = "
          f"{matching_round_bound(network)})")

    print("stabilized-phase cost per step:")
    print(f"  MATCHING (1-efficient): {sim1.metrics.max_reads_in_step} "
          f"neighbor, {sim1.metrics.max_bits_in_step:.2f} bits")
    print(f"  baseline (Δ-efficient): {simb.metrics.max_reads_in_step} "
          f"neighbors, {simb.metrics.max_bits_in_step:.2f} bits")

    # Theorem 8: matched replicas watch only their partner.
    sim = spec_for("matching").build_simulator()
    sim.run_until_silent(max_rounds=100_000)
    suffix = sim.measure_suffix_stability(extra_rounds=30)
    settled = sum(1 for ports in suffix.values() if len(ports) <= 1)
    bound = matching_stability_bound(network)
    print(f"nodes watching a single partner forever: {settled}/{network.n} "
          f"(Theorem 8 lower bound 2⌈m/(2Δ-1)⌉ = {bound})")
    assert settled >= bound


if __name__ == "__main__":
    main()
