"""Scenario: cluster-head election in an ad-hoc network via the
COLORING → MIS pipeline.

A random ad-hoc network elects *cluster heads* — a maximal independent
set — so every node is a head or adjacent to one, and no two heads
clash.  The network is anonymous, so we first run protocol COLORING to
manufacture the local identifiers MIS needs (the paper's "local
coloring gives a dag orientation" substrate), then run protocol MIS on
top.  Both layers read one neighbor per step.

The script also measures Theorem 6's ♦-(x,1)-stability: after
stabilization the dominated nodes watch a single neighbor forever,
while heads keep patrolling.

Run:  python examples/cluster_head_election.py
"""

from repro import Simulator, random_connected
from repro.analysis import measure_stability, mis_round_bound, mis_stability_bound
from repro.graphs import color_count
from repro.predicates import dominators, is_maximal_independent_set
from repro.protocols import MISProtocol, colors_from_coloring_protocol


def main() -> None:
    network = random_connected(30, 0.12, seed=5)
    print(f"ad-hoc network: n = {network.n}, m = {network.m}, "
          f"Δ = {network.max_degree}")

    # Layer 1: local identifiers out of the anonymous network.
    stage = colors_from_coloring_protocol(network, seed=11)
    print(f"layer 1 (COLORING): {color_count(stage.colors)} colors in "
          f"{stage.rounds} rounds")

    # Layer 2: cluster heads.
    protocol = MISProtocol(network, stage.colors)
    sim = Simulator(protocol, network, seed=23)
    report = sim.run_until_silent(max_rounds=20_000)
    heads = dominators(network, sim.config)
    assert is_maximal_independent_set(network, heads)
    bound = mis_round_bound(network, stage.colors)
    print(f"layer 2 (MIS): {len(heads)} cluster heads in {report.rounds} "
          f"rounds (Lemma 4 bound: Δ·#C = {bound})")

    # Stabilized-phase communication pattern (Theorem 6).
    m = measure_stability(MISProtocol(network, stage.colors), network,
                          seed=23, suffix_rounds=30)
    x_bound, exact = mis_stability_bound(network)
    print(f"eventually-1-stable nodes: {m.x}/{network.n} "
          f"(Theorem 6 lower bound ⌊(L_max+1)/2⌋ = {x_bound}"
          f"{'' if exact else ', heuristic L_max'})")
    assert m.x >= x_bound
    print("every member node monitors exactly one cluster head forever; "
          "only heads pay the full-neighborhood patrol.")


if __name__ == "__main__":
    main()
