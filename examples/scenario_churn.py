"""Fault-fraction × topology sweeps through the scenario axis.

The paper's headline claims are about behaviour *after* transient
faults: a silent protocol stabilizes, a fault strikes, and the system
re-stabilizes while reading as little as possible.  This script drives
that experiment declaratively — no imperative fault loops — by
attaching canned scenarios to campaign specs:

* a ``single-fault`` sweep over fault fraction × topology for
  COLORING / MIS / MATCHING, reporting recovery rounds and the
  post-fault read-bit overhead straight off the trial rows;
* one ``churn`` trial per protocol, where nodes and edges join and
  leave mid-run (connectivity-safe mutations, protocol rebuilt per
  topology) and the system still re-stabilizes.

The same sweeps are available from the shell::

    python -m repro campaign --protocols coloring mis matching \\
        --topologies ring:n=12 grid:rows=3,cols=4 \\
        --scenario single-fault:fraction=0.4 --seeds 4
    python -m repro run mis --topology gnp --n 14 \\
        --scenario churn:period_rounds=3,fraction=0.2,total_rounds=60

Run:  python examples/scenario_churn.py
"""

from repro import Campaign
from repro.experiments import format_table

PROTOCOLS = ["coloring", "mis", "matching"]
TOPOLOGIES = [
    ("ring", {"n": 12}),
    ("grid", {"rows": 3, "cols": 4}),
]
FRACTIONS = (0.25, 0.75)
SEEDS = range(3)


def single_fault_sweep() -> None:
    """Sweep fault fraction × topology; every spec re-stabilizes."""
    # One grid per fraction (a scenario applies grid-wide); the
    # concatenation is still one campaign with distinct spec keys.
    specs = []
    for fraction in FRACTIONS:
        specs.extend(Campaign.grid(
            protocols=PROTOCOLS,
            topologies=TOPOLOGIES,
            schedulers=["synchronous"],
            seeds=SEEDS,
            scenario="single-fault",
            scenario_params={"fraction": fraction},
        ))
    outcome = Campaign(specs).run()

    rows = []
    by_point = {}
    for spec, result in outcome:
        point = (spec.protocol, spec.topology,
                 spec.scenario_params["fraction"])
        by_point.setdefault(point, []).append(result)
    for (proto, topo, fraction), results in sorted(by_point.items()):
        mean = lambda attr: (  # noqa: E731 - tiny table helper
            sum(getattr(r, attr) for r in results) / len(results)
        )
        rows.append([
            proto, topo, fraction,
            f"{mean('mean_recovery_rounds'):.1f}",
            f"{mean('post_fault_bits'):.1f}",
            all(r.silent and r.legitimate for r in results),
        ])
    print(format_table(
        ["protocol", "topology", "fault fraction", "mean recovery rounds",
         "post-fault bits", "all re-stabilized"],
        rows,
        title="single-fault sweep (3 seeds per point)",
    ))
    assert all(r.silent and r.legitimate for r in outcome.results)
    assert all(r.faults_injected == 1 for r in outcome.results)


def churn_trials() -> None:
    """Node/edge churn mid-run: the protocols recover every time."""
    campaign = Campaign.grid(
        protocols=PROTOCOLS,
        topologies=[("gnp", {"n": 14, "p": 0.3, "seed": 2})],
        schedulers=["synchronous"],
        seeds=[1],
        scenario="churn",
        scenario_params={"period_rounds": 6, "fraction": 0.15,
                         "total_rounds": 90},
    )
    outcome = campaign.run()
    rows = [
        [spec.protocol, result.faults_injected, result.n, result.m,
         f"{result.mean_recovery_rounds:.1f}", result.legitimate]
        for spec, result in outcome
    ]
    print(format_table(
        ["protocol", "events", "final n", "final m",
         "mean recovery rounds", "legitimate at horizon"],
        rows,
        title="churn: nodes/edges join and leave every 6 rounds",
    ))
    assert all(r.faults_injected > 0 for r in outcome.results)


def main() -> None:
    print("scenario sweeps: declarative faults through the campaign axis\n")
    single_fault_sweep()
    print()
    churn_trials()


if __name__ == "__main__":
    main()
