"""Scenario: frequency assignment in a sensor grid, with fault injection.

A 6×6 grid of anonymous radio sensors must hold a proper "frequency"
(color) assignment so adjacent sensors never interfere.  Transient
faults (power glitches, memory corruption) may scramble any subset of
sensors at any time; self-stabilization means the grid re-converges
without operator intervention — and protocol COLORING does it while
every sensor polls just *one* neighbor per step.

The script stabilizes the grid, injects three escalating faults
(single sensor, a whole row, every sensor), and shows recovery after
each, with the communication cost of the monitoring phase.

Run:  python examples/sensor_grid_recovery.py
"""

import random

from repro import ColoringProtocol, RandomSubsetScheduler, Simulator, grid
from repro.predicates import conflict_count


def inject_fault(sim, victims, rng) -> None:
    """Corrupt the color (and pointer) of each victim arbitrarily."""
    for p in victims:
        sim.config.set(p, "C", rng.randint(1, len(sim.protocol.palette)))
        sim.config.set(p, "cur", rng.randint(1, sim.network.degree(p)))


def recover(sim, label: str) -> None:
    before = conflict_count(sim.network, sim.config)
    report = sim.run_until_silent(max_rounds=50_000)
    print(f"{label}: {before} sensors in conflict -> recovered in "
          f"{report.rounds} rounds (total so far), "
          f"k-efficiency still {sim.metrics.observed_k_efficiency()}")


def main() -> None:
    rng = random.Random(7)
    network = grid(6, 6)
    protocol = ColoringProtocol.for_network(network)
    sim = Simulator(
        protocol, network, scheduler=RandomSubsetScheduler(0.6), seed=99
    )

    print(f"sensor grid 6x6: n = {network.n}, Δ = {network.max_degree}, "
          f"palette = {len(protocol.palette)} frequencies")
    recover(sim, "initial corruption (all sensors arbitrary)")

    inject_fault(sim, [(2, 3)], rng)
    recover(sim, "single-sensor glitch")

    inject_fault(sim, [(4, c) for c in range(6)], rng)
    recover(sim, "row power surge (6 sensors)")

    inject_fault(sim, list(network.processes), rng)
    recover(sim, "total blackout (36 sensors)")

    assert sim.is_legitimate()
    print("grid is interference-free; monitoring costs one neighbor "
          "read per sensor per step, forever.")


if __name__ == "__main__":
    main()
