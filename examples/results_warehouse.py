"""The results warehouse end to end: store, query, report, compare.

The paper's comparative claims live in aggregates, not single runs.
This script runs one small campaign straight into a SQLite results
store (``sink="sqlite"``), then does everything the warehouse exists
for:

1. grouped statistics with 95% confidence intervals
   (``ResultStore.query``) — mean rounds and total read-bits per
   protocol under two daemons;
2. the paper-style summary table (``campaign_summary_table``) rendered
   from the *store*, identical to what ``repro campaign`` printed live;
3. a cross-run regression check: a second campaign on a bigger ring is
   stored as its own run and diffed against the first — rounds grow
   with n, and the threshold gate flags exactly that.

Run:  python examples/results_warehouse.py
"""

import os
import tempfile

from repro import Campaign, ResultStore
from repro.results import campaign_summary_table, diff_runs, query_table


def run_campaign(store_path: str, run_id: str, n: int) -> None:
    """One protocols x daemons grid on an n-ring, sunk into ``run_id``."""
    from repro.results import SqliteSink

    campaign = Campaign.grid(
        protocols=["coloring", "mis", "matching"],
        topologies=[("ring", {"n": n})],
        schedulers=["synchronous", "central"],
        seeds=range(5),
    )
    outcome = campaign.run(
        sink=SqliteSink(store_path, run_id=run_id, label=f"ring-{n}")
    )
    print(f"run {run_id!r}: {outcome.executed} trials on the {n}-ring")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "warehouse.sqlite")
        run_campaign(store_path, "small-ring", n=12)
        run_campaign(store_path, "big-ring", n=24)

        with ResultStore(store_path) as store:
            # 1. Grouped statistics: mean +/- CI95 per protocol x daemon.
            group_by = ("protocol", "scheduler")
            metrics = ("rounds", "total_bits")
            groups = store.query(metrics=metrics, group_by=group_by,
                                 run_id="small-ring")
            print()
            print(query_table(groups, group_by, metrics,
                              title="small-ring: mean / ±95% / median"))

            # 2. The campaign summary table, straight off the store —
            #    byte-identical to the live `repro campaign` output.
            print()
            print(campaign_summary_table(store.iter_results("small-ring"),
                                         title="stored campaign summary"))

            # 3. Cross-run diff with a threshold gate: doubling the ring
            #    should cost more rounds somewhere — the gate says where.
            rows = diff_runs(store, "small-ring", "big-ring",
                             metrics=("rounds",), threshold=0.10)
            regressions = [row for row in rows if row.regressed]
            print()
            print(f"small-ring -> big-ring: {len(rows)} compared cells, "
                  f"{len(regressions)} beyond the 10% threshold")
            for row in regressions:
                print("  " + row.describe())
            assert regressions, "a 2x ring with identical rounds is a bug"

            # Provenance came along for free.
            for info in store.runs():
                print(f"run {info.run_id!r}: {info.trials} trials, "
                      f"git {info.git_rev or '?'}, "
                      f"{info.wall_time_s:.2f}s wall")


if __name__ == "__main__":
    main()
