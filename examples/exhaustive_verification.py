"""Exhaustive verification on small networks — beyond sampling.

Simulation can only sample the self-stabilization claim "from *any*
configuration".  On small networks the claim is finitely checkable, and
this script checks it outright:

* COLORING on a 3-chain: the predicate is closed (Lemma 1) and every
  one of the 54 configurations converges (Theorem 3) — verified over
  the entire configuration space, random draws branched.
* MIS on a 3-chain: every configuration converges, and the *exact*
  worst-case round count is computed and compared with Lemma 4's Δ·#C
  (safe, not tight).
* The fixed-watch strawman on the adversarially port-numbered chain:
  the checker confirms everything deadlocks into silence, and the
  Theorem 1 trap exhibits a silent endpoint that is illegitimate —
  the impossibility, found by brute force.

Run:  python examples/exhaustive_verification.py
"""

from repro.analysis import mis_round_bound
from repro.core import is_silent
from repro.graphs import chain, theorem1_chain
from repro.impossibility import FixedWatchColoring, build_trap_configuration
from repro.protocols import ColoringProtocol, MISProtocol
from repro.verification import (
    exact_worst_case_rounds,
    verify_closure,
    verify_convergence_round_robin,
)


def main() -> None:
    net = chain(3)

    coloring = ColoringProtocol.for_network(net)
    closure = verify_closure(coloring, net)
    convergence = verify_convergence_round_robin(coloring, net)
    print(f"COLORING on chain(3): closure holds over "
          f"{closure.legitimate_configs} legitimate configs: {closure.holds}")
    print(f"  convergence from all {convergence.configs_checked} configs: "
          f"{convergence.all_converged} (worst shortest path: "
          f"{convergence.worst_steps} steps)")
    assert closure.holds and convergence.all_converged

    colors = {0: 1, 1: 2, 2: 1}
    mis = MISProtocol(net, colors)
    exact = exact_worst_case_rounds(mis, net)
    bound = mis_round_bound(net, colors)
    print(f"MIS on chain(3): exact worst-case rounds = {exact}, "
          f"Lemma 4 bound Δ·#C = {bound} (bound is safe, not tight)")
    assert exact <= bound

    adversarial = theorem1_chain().with_ports({3: [2, 4], 4: [5, 3]})
    strawman = FixedWatchColoring(palette_size=3)
    report = verify_convergence_round_robin(strawman, adversarial)
    trap = build_trap_configuration(strawman, adversarial, (3, 4))
    print(f"strawman on adversarial chain: all {report.configs_checked} "
          f"configs deadlock into silence: {report.all_converged}")
    print(f"  but the Theorem 1 trap is silent={is_silent(strawman, adversarial, trap)} "
          f"and legitimate={strawman.is_legitimate(adversarial, trap)} — "
          f"the impossibility, exhibited exhaustively")
    assert not strawman.is_legitimate(adversarial, trap)


if __name__ == "__main__":
    main()
