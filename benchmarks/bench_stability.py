"""E4/E5 — ♦-(x,1)-stability (Theorems 6 and 8, Figures 9 and 11).

Claims reproduced: after stabilization at least ⌊(L_max+1)/2⌋ MIS
processes and 2⌈m/(2Δ−1)⌉ MATCHING processes read a single neighbor
forever; the Figure 9 path and Figure 11 graph match their bounds.
"""

import pytest

from repro import Simulator, chain, figure9_path, figure11_graph, ring
from repro.analysis import (
    matching_stability_bound,
    measure_stability,
    mis_stability_bound,
)
from repro.graphs import caterpillar, greedy_coloring, random_tree
from repro.protocols import MISProtocol, MatchingProtocol

from conftest import print_table

MIS_CASES = {
    "fig9-path7": lambda: figure9_path(7),
    "chain16": lambda: chain(16),
    "ring14": lambda: ring(14),
    "caterpillar": lambda: caterpillar(6, 2),
    "tree20": lambda: random_tree(20, seed=3),
}

MATCHING_CASES = {
    "fig11": lambda: figure11_graph()[0],
    "chain16": lambda: chain(16),
    "ring14": lambda: ring(14),
    "caterpillar": lambda: caterpillar(6, 2),
}


@pytest.mark.parametrize("label", sorted(MIS_CASES), ids=sorted(MIS_CASES))
def test_mis_stability(benchmark, label):
    net = MIS_CASES[label]()
    colors = greedy_coloring(net)

    def pipeline():
        return measure_stability(
            MISProtocol(net, colors), net, seed=4, suffix_rounds=30
        )

    m = benchmark(pipeline)
    bound, _ = mis_stability_bound(net)
    assert m.x >= bound


@pytest.mark.parametrize("label", sorted(MATCHING_CASES), ids=sorted(MATCHING_CASES))
def test_matching_stability(benchmark, label):
    net = MATCHING_CASES[label]()
    colors = greedy_coloring(net)

    def pipeline():
        return measure_stability(
            MatchingProtocol(net, colors), net, seed=4, suffix_rounds=35
        )

    m = benchmark(pipeline)
    assert m.x >= matching_stability_bound(net)


def test_stability_tables(benchmark):
    def sweep():
        mis_rows = []
        for label in sorted(MIS_CASES):
            net = MIS_CASES[label]()
            m = measure_stability(
                MISProtocol(net, greedy_coloring(net)), net, seed=4,
                suffix_rounds=30,
            )
            bound, exact = mis_stability_bound(net)
            mis_rows.append([label, net.n, m.x, bound, exact, m.x >= bound])
        match_rows = []
        for label in sorted(MATCHING_CASES):
            net = MATCHING_CASES[label]()
            m = measure_stability(
                MatchingProtocol(net, greedy_coloring(net)), net, seed=4,
                suffix_rounds=35,
            )
            bound = matching_stability_bound(net)
            match_rows.append([label, net.n, m.x, bound, m.x >= bound])
        return mis_rows, match_rows

    mis_rows, match_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E4  MIS ♦-(x,1)-stability: measured x vs ⌊(L_max+1)/2⌋ (Thm 6)",
        ["case", "n", "x measured", "bound", "L_max exact", "holds"],
        mis_rows,
    )
    print_table(
        "E5  MATCHING ♦-(x,1)-stability: measured x vs 2⌈m/(2Δ-1)⌉ (Thm 8)",
        ["case", "n", "x measured", "bound", "holds"],
        match_rows,
    )
    assert all(r[-1] for r in mis_rows)
    assert all(r[-1] for r in match_rows)


def test_figure11_exactly_matches_bound(benchmark):
    """Figure 11's point: the Theorem 8 bound is tight — there is a
    topology and a maximal matching achieving it with equality."""
    net, matching = figure11_graph()

    def check():
        return matching_stability_bound(net), 2 * len(matching)

    bound, achieved = benchmark(check)
    assert bound == achieved == 4
