"""Exhaustive-verification benches: exact worst cases vs lemma bounds.

Times the small-model checker and records the gap between exact
worst-case rounds (round-robin daemon, all starts) and the paper's
Lemma 4 / Lemma 9 bounds on verifiable instances.
"""

import pytest

from repro.analysis import matching_round_bound, mis_round_bound
from repro.graphs import chain
from repro.protocols import ColoringProtocol, MISProtocol, MatchingProtocol
from repro.verification import (
    exact_worst_case_rounds,
    verify_closure,
    verify_convergence_round_robin,
)

from conftest import print_table


def test_exhaustive_coloring_chain3(benchmark):
    net = chain(3)
    proto = ColoringProtocol.for_network(net)

    def verify():
        return (
            verify_closure(proto, net).holds,
            verify_convergence_round_robin(proto, net).all_converged,
        )

    closure, convergence = benchmark(verify)
    assert closure and convergence


def test_exhaustive_mis_chain4(benchmark):
    net = chain(4)
    colors = {0: 1, 1: 2, 2: 1, 3: 2}
    proto = MISProtocol(net, colors)

    def verify():
        return verify_convergence_round_robin(proto, net)

    report = benchmark(verify)
    assert report.all_converged


def test_exact_vs_lemma_bounds_table(benchmark):
    def sweep():
        rows = []
        net3 = chain(3)
        colors3 = {0: 1, 1: 2, 2: 1}
        rows.append(
            ["MIS chain3",
             exact_worst_case_rounds(MISProtocol(net3, colors3), net3),
             mis_round_bound(net3, colors3)]
        )
        rows.append(
            ["MATCHING chain3",
             exact_worst_case_rounds(MatchingProtocol(net3, colors3), net3),
             matching_round_bound(net3)]
        )
        net4 = chain(4)
        colors4 = {0: 1, 1: 2, 2: 1, 3: 2}
        rows.append(
            ["MIS chain4",
             exact_worst_case_rounds(MISProtocol(net4, colors4), net4),
             mis_round_bound(net4, colors4)]
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "exhaustive: exact worst-case rounds (round-robin, all starts) vs "
        "lemma bounds",
        ["instance", "exact worst rounds", "lemma bound"],
        rows,
    )
    assert all(row[1] <= row[2] for row in rows)
