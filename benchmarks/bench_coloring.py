"""E1 — Protocol COLORING (Fig. 7, Theorem 3).

Claim reproduced: COLORING is 1-efficient and stabilizes w.p. 1 in
arbitrary anonymous networks; stabilized-phase communication is
log(Δ+1) bits per process per step.

Experiments are declared through the :mod:`repro.api` layer — topology
and protocol by name, sweeps as campaigns — so the bench doubles as a
regression test of the declarative path.
"""

import pytest

from repro.analysis import coloring_communication_bits
from repro.api import Campaign, ExperimentSpec

from conftest import print_table

TOPOLOGIES = {
    "ring32": ("ring", {"n": 32}),
    "gnp48": ("gnp", {"n": 48, "p": 0.12, "seed": 3}),
    "clique10": ("clique", {"n": 10}),
}


def _run_to_silence(topology, params, seed):
    spec = ExperimentSpec(
        protocol="coloring", topology=topology, topology_params=params,
        seed=seed,
    )
    sim = spec.build_simulator()
    report = sim.run_until_silent(max_rounds=50_000)
    return sim, report


@pytest.mark.parametrize("label", sorted(TOPOLOGIES), ids=sorted(TOPOLOGIES))
def test_coloring_stabilization(benchmark, label):
    topology, params = TOPOLOGIES[label]

    def pipeline():
        return _run_to_silence(topology, params, seed=7)

    sim, report = benchmark(pipeline)
    assert report.stabilized
    assert sim.metrics.observed_k_efficiency() == 1
    assert sim.metrics.max_bits_in_step <= coloring_communication_bits(
        sim.network.max_degree
    ) + 1e-9


def test_coloring_sweep_table(benchmark):
    """Rounds-to-silence across sizes, 8 corrupted starts each."""
    sizes = [8, 16, 32, 64]

    def sweep():
        campaign = Campaign.grid(
            protocols=["coloring"],
            topologies=[
                ("gnp", {"n": n, "p": min(0.3, 8.0 / n), "seed": n})
                for n in sizes
            ],
            seeds=range(8),
        )
        outcome = campaign.run()
        rows = []
        for n in sizes:
            trials = [r for s, r in outcome
                      if s.topology_params["n"] == n]
            assert all(t.legitimate and t.silent for t in trials)
            rows.append([
                n, trials[0].delta,
                sum(t.rounds for t in trials) / len(trials),
                max(t.rounds for t in trials),
                max(t.k_efficiency for t in trials),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E1  COLORING: rounds to silence (8 seeds each; k-eff must be 1)",
        ["n", "Δ", "mean rounds", "max rounds", "k-eff"],
        rows,
    )
    assert all(row[4] == 1 for row in rows)
