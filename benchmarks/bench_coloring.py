"""E1 — Protocol COLORING (Fig. 7, Theorem 3).

Claim reproduced: COLORING is 1-efficient and stabilizes w.p. 1 in
arbitrary anonymous networks; stabilized-phase communication is
log(Δ+1) bits per process per step.
"""

import pytest

from repro import ColoringProtocol, Simulator, clique, random_connected, ring
from repro.analysis import coloring_communication_bits
from repro.experiments import run_sweep

from conftest import print_table


def _run_to_silence(net, seed):
    proto = ColoringProtocol.for_network(net)
    sim = Simulator(proto, net, seed=seed)
    report = sim.run_until_silent(max_rounds=50_000)
    return sim, report


@pytest.mark.parametrize(
    "maker,label",
    [
        (lambda: ring(32), "ring32"),
        (lambda: random_connected(48, 0.12, seed=3), "gnp48"),
        (lambda: clique(10), "clique10"),
    ],
    ids=["ring32", "gnp48", "clique10"],
)
def test_coloring_stabilization(benchmark, maker, label):
    net = maker()

    def pipeline():
        return _run_to_silence(net, seed=7)

    sim, report = benchmark(pipeline)
    assert report.stabilized
    assert sim.metrics.observed_k_efficiency() == 1
    assert sim.metrics.max_bits_in_step <= coloring_communication_bits(
        net.max_degree
    ) + 1e-9


def test_coloring_sweep_table(benchmark):
    """Rounds-to-silence across sizes, 8 corrupted starts each."""
    sizes = [8, 16, 32, 64]

    def sweep():
        rows = []
        for n in sizes:
            net = random_connected(n, min(0.3, 8.0 / n), seed=n)
            point = run_sweep(
                f"n={n}",
                lambda net_: ColoringProtocol.for_network(net_),
                net,
                seeds=range(8),
            )
            assert point.all_stabilized
            rows.append(
                [n, net.max_degree, point.mean("rounds"), point.max("rounds"),
                 point.max("k_efficiency")]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E1  COLORING: rounds to silence (8 seeds each; k-eff must be 1)",
        ["n", "Δ", "mean rounds", "max rounds", "k-eff"],
        rows,
    )
    assert all(row[4] == 1 for row in rows)
