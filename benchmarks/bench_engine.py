"""E10 — Enabled-set engine throughput: incremental vs full scan.

The 10k-node scale tier.  For COLORING / MIS / MATCHING on 10k-process
rings, tori and sparse random graphs, measures raw simulator throughput
(steps/sec) under the enabled-drawing central daemon with the
``incremental`` engine versus the ``scan`` fallback, and asserts the
speedup the dirty-set design promises (O(Δ·activated) vs O(n·Δ) per
step — see docs/performance.md for the argument and recorded numbers).

Run as a pytest bench::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q           # full 10k tier
    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q --tiny   # CI smoke

or as a plain script::

    PYTHONPATH=src python benchmarks/bench_engine.py [--tiny] [--n 10000]
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.api import ExperimentSpec

FULL_N = 10_000
FULL_BUDGET_S = 1.5
TINY_N = 120
TINY_BUDGET_S = 0.1

PROTOCOLS = ("coloring", "mis", "matching")

#: the speedup floor asserted at full scale on the ring (the measured
#: ratio is two orders of magnitude; 3x keeps the guard robust on
#: loaded CI machines)
MIN_SPEEDUP = 3.0


def topologies(n: int) -> List[Tuple[str, Dict]]:
    """The scale-tier topology grid at ``n`` processes."""
    side = max(3, round(n ** 0.5))
    return [
        ("ring", {"n": n}),
        ("torus", {"rows": side, "cols": side}),
        ("sparse", {"n": n, "avg_degree": 3.0, "seed": 7}),
    ]


def build_spec(protocol: str, topology: str, params: Dict,
               engine: str) -> ExperimentSpec:
    """One scale-tier spec: enabled-drawing central daemon, given engine."""
    return ExperimentSpec(
        protocol=protocol,
        topology=topology,
        topology_params=params,
        scheduler="central",
        scheduler_params={"enabled_only": True},
        seed=1,
        engine=engine,
    )


def steps_per_sec(spec: ExperimentSpec, budget_s: float) -> float:
    """Run ``spec``'s simulator for ~budget_s of wall time; steps/sec."""
    sim = spec.build_simulator()
    sim.step()  # warm caches outside the timed window
    steps = 0
    t0 = time.perf_counter()
    while True:
        sim.step()
        steps += 1
        elapsed = time.perf_counter() - t0
        if elapsed >= budget_s:
            return steps / elapsed


def identical_prefix(protocol: str, topology: str, params: Dict,
                     steps: int = 50) -> bool:
    """Cheap determinism guard: both engines replay the same steps."""
    runs = []
    for engine in ("incremental", "scan"):
        sim = build_spec(protocol, topology, params, engine).build_simulator()
        runs.append([sim.step() for _ in range(steps)])
    return runs[0] == runs[1]


def compare_engines(n: int, budget_s: float) -> List[List]:
    """The bench grid: one row per (topology, protocol) with the speedup."""
    rows = []
    for topo_name, params in topologies(n):
        for protocol in PROTOCOLS:
            fast = steps_per_sec(
                build_spec(protocol, topo_name, params, "incremental"),
                budget_s,
            )
            slow = steps_per_sec(
                build_spec(protocol, topo_name, params, "scan"), budget_s
            )
            rows.append([
                topo_name, protocol, f"{fast:,.0f}", f"{slow:,.0f}",
                fast / slow,
            ])
    return rows


def _emit(rows: List[List], n: int) -> None:
    from conftest import print_table

    print_table(
        f"E10  engine throughput, n={n} (enabled-drawing central daemon)",
        ["topology", "protocol", "incremental steps/s", "scan steps/s",
         "speedup"],
        [row[:4] + [f"{row[4]:.1f}x"] for row in rows],
    )


# ----------------------------------------------------------------------
# Pytest entry points
# ----------------------------------------------------------------------
def test_engines_replay_identically(tiny):
    n = TINY_N if tiny else 600  # equivalence check needs steps, not scale
    for topo_name, params in topologies(n):
        assert identical_prefix("mis", topo_name, params), topo_name
    assert identical_prefix("coloring", "ring", {"n": n})
    assert identical_prefix("matching", "ring", {"n": n})


def test_engine_speedup_grid(tiny):
    n = TINY_N if tiny else FULL_N
    budget = TINY_BUDGET_S if tiny else FULL_BUDGET_S
    rows = compare_engines(n, budget)
    _emit(rows, n)
    assert all(speedup > 0 for *_front, speedup in rows)
    if not tiny:
        # The acceptance bar: >= 3x on the 10k ring under the central
        # daemon, for every protocol.
        ring_rows = [row for row in rows if row[0] == "ring"]
        assert ring_rows and all(row[4] >= MIN_SPEEDUP for row in ring_rows)


# ----------------------------------------------------------------------
# Script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="smoke sizes (CI)")
    parser.add_argument("--n", type=int, default=None,
                        help=f"network size (default {FULL_N}, "
                             f"or {TINY_N} with --tiny)")
    parser.add_argument("--budget", type=float, default=None,
                        help="seconds of stepping per (engine, cell)")
    args = parser.parse_args(argv)

    n = args.n or (TINY_N if args.tiny else FULL_N)
    budget = args.budget or (TINY_BUDGET_S if args.tiny else FULL_BUDGET_S)
    rows = compare_engines(n, budget)
    print(f"engine comparison at n={n}, {budget:.2f}s per cell:")
    for topo, proto, fast, slow, speedup in rows:
        print(f"  {topo:8s} {proto:10s} incremental {fast:>12s}/s   "
              f"scan {slow:>10s}/s   speedup {speedup:.1f}x")
    floor_ok = all(
        speedup >= MIN_SPEEDUP for topo, *_mid, speedup in rows
        if topo == "ring"
    )
    if not args.tiny and not floor_ok:
        print(f"FAIL: ring speedup below the {MIN_SPEEDUP}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
