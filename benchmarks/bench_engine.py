"""E10 — Step-loop throughput: engines, state backends, metrics tiers.

The 10k-node scale tier.  Two families of measurements:

* **Engine grid** — for COLORING / MIS / MATCHING on 10k-process rings,
  tori and sparse random graphs, raw simulator throughput (steps/sec)
  under the enabled-drawing central daemon across enabled-set engines
  (``incremental`` vs the ``scan`` fallback) × metrics tiers (``full``
  vs ``aggregate``), asserting the dirty-set speedup floor.
* **Flat hot loop** — the PR-3 acceptance gate: 10k-node *synchronous*
  COLORING, flat indexed state + pooled contexts + ``aggregate``
  metrics versus the preserved pre-flat baseline
  (``Simulator(state="legacy", metrics="full")`` — dict-of-dicts
  configuration, one fresh context per activation, full per-step
  records).  Asserts ≥3x at full scale and a generous ≥1.3x in the
  ``--tiny`` CI smoke.
* **Scenario churn + recovery** — the PR-4 gate: synchronous COLORING
  at the same scale with the canned ``churn`` scenario (periodic
  corruption + connectivity-safe node/edge churn, recovery cycles
  timed through the metrics collector) versus the identical
  scenario-free run.  Asserts the scenario machinery keeps a generous
  fraction of the plain hot-loop throughput, and that events actually
  fired.
* **Batch (columnar) engine** — the PR-7 gate: 10k-node synchronous
  COLORING under the aggregate tier, ``engine="batch"`` versus the
  scalar incremental loop, asserting ≥5x at full scale (a generous
  ≥1.5x in the ``--tiny`` smoke), plus a 1M-process sparse-topology
  tier (batch only — the scalar loop would take minutes per step)
  reporting steps/sec and process-activations/sec.
* **Column-resident fused driver** — the PR-8 gate: the same 10k
  synchronous COLORING pair, ``engine="batch-resident"`` stepped
  through the fused :meth:`Simulator.run_resident` driver versus the
  per-step batch engine, asserting ≥3x at full scale (≥1.5x at
  ``--tiny``).  The 1M sparse tier reruns under the resident engine
  with the build cost split out — total simulator build, the
  ColumnStore build alone (< 10s) and fused steps/sec (≥ 5) are each
  gated separately, so a build regression cannot hide behind a
  stepping win or vice versa.

Every run (pytest or script) appends machine-readable results to
``BENCH_3.json`` at the repo root — steps/sec per topology × protocol
× engine × metrics tier plus the hot-loop ratio — the scenario case to
``BENCH_4.json``, the batch-engine case (with the 1M-node tier at
full scale) to ``BENCH_5.json``, and the resident case to
``BENCH_6.json``; all are keyed by mode (``full`` / ``tiny``) so CI
smoke numbers never shadow scale-tier ones.

Run as a pytest bench::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q           # full 10k tier
    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q --tiny   # CI smoke

or as a plain script::

    PYTHONPATH=src python benchmarks/bench_engine.py [--tiny] [--n 10000]

The script form can additionally append each emission to a results
store's bench trajectory (``--store bench.sqlite``), which ``repro
compare --bench`` and :func:`repro.results.diff_bench` gate for
regressions.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Tuple

from repro.api import ExperimentSpec
from repro.core import Simulator

FULL_N = 10_000
FULL_BUDGET_S = 1.5
TINY_N = 120
TINY_BUDGET_S = 0.1

PROTOCOLS = ("coloring", "mis", "matching")
ENGINES = ("incremental", "scan")
TIERS = ("full", "aggregate")

#: the speedup floor asserted at full scale on the ring (the measured
#: ratio is two orders of magnitude; 3x keeps the guard robust on
#: loaded CI machines)
MIN_SPEEDUP = 3.0

#: acceptance floor of the flat hot loop over the legacy baseline on
#: 10k-node synchronous coloring (measured ≈4x; see docs/performance.md)
MIN_FLAT_SPEEDUP = 3.0

#: generous floor for the --tiny CI perf smoke: catches a wholesale
#: regression (losing pooling or the flat rows) without flaking on
#: loaded runners
MIN_FLAT_SPEEDUP_TINY = 1.3

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_3.json"
BENCH4_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_4.json"
BENCH5_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_5.json"

#: PR-7 acceptance floor: the columnar batch engine over the scalar
#: incremental loop on 10k-node synchronous coloring, aggregate tier
MIN_BATCH_SPEEDUP = 5.0

#: generous --tiny floor (and a larger-than-TINY_N size below): column
#: setup amortizes over n, so the smoke runs at BATCH_TINY_N processes
#: where vectorization already clearly wins without flaking on loaded
#: CI runners
MIN_BATCH_SPEEDUP_TINY = 1.5
BATCH_TINY_N = 600

#: the 1M-process sparse tier (full mode only): batch engine only —
#: one synchronous step touches every process, so a handful of steps
#: is enough for a stable rate
MILLION_N = 1_000_000
MILLION_STEPS = 5

BENCH6_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_6.json"

#: PR-8 acceptance floor: the fused resident driver over the per-step
#: batch engine on 10k-node synchronous coloring, aggregate tier
MIN_RESIDENT_SPEEDUP = 3.0

#: generous --tiny floor (same rationale as MIN_BATCH_SPEEDUP_TINY:
#: catch losing the fused loop outright without flaking on loaded
#: runners)
MIN_RESIDENT_SPEEDUP_TINY = 1.5

#: the pure-python column backend skips the same row decodes but has
#: no vectorized kernels to amplify the win — resident runs ~1.1-1.4x
#: batch at n=600 there, so the no-NumPy lane only gates against an
#: outright regression
MIN_RESIDENT_SPEEDUP_TINY_PYTHON = 0.9

#: 1M-tier gates (full mode), asserted independently: the vectorized
#: build path must assemble the ColumnStore within the budget, and the
#: fused driver must sustain this many synchronous steps per second
MILLION_STORE_BUILD_BUDGET_S = 10.0
MILLION_MIN_STEPS_PER_SEC = 5.0

#: PR-10 telemetry gates.  The disabled-registry path is one branch
#: per fused span, far below what wall-clock timing can resolve, so
#: the disabled-path contract is enforced through the BENCH_6
#: trajectory gate (the resident rate now *includes* the guards; any
#: real cost shows up against the recorded baseline).  What is
#: measurable in-process is the cost of the registry switched ON —
#: one counter pair, one histogram observe and one span record per
#: fused chunk — gated here against the disabled rate.
MAX_OBS_ENABLED_OVERHEAD = 0.05

#: generous --tiny floor: at smoke sizes a fused chunk is microseconds
#: of work, so the fixed per-chunk recording cost looms larger and
#: loaded CI runners add noise; only a wholesale regression (recording
#: leaking into the per-step loop) should trip this
MAX_OBS_ENABLED_OVERHEAD_TINY = 0.35

#: generous floors for the churn+recovery scenario case: the scenario
#: run (periodic corruption + topology churn + recovery tracking —
#: recovery timing pays one exact silence check per round while
#: recovering, which dominates) must keep this fraction of the
#: scenario-free throughput.  Measured ≈0.22 at full scale and ≈0.12
#: at --tiny; the floors only catch a wholesale regression (e.g.
#: scenario bookkeeping leaking into scenario-free steps) without
#: flaking on loaded CI runners.
MIN_SCENARIO_RATIO = 0.12
MIN_SCENARIO_RATIO_TINY = 0.06


def topologies(n: int) -> List[Tuple[str, Dict]]:
    """The scale-tier topology grid at ``n`` processes."""
    side = max(3, round(n ** 0.5))
    return [
        ("ring", {"n": n}),
        ("torus", {"rows": side, "cols": side}),
        ("sparse", {"n": n, "avg_degree": 3.0, "seed": 7}),
    ]


def build_spec(protocol: str, topology: str, params: Dict, engine: str,
               metrics: str = "full") -> ExperimentSpec:
    """One scale-tier spec: enabled-drawing central daemon, given engine."""
    return ExperimentSpec(
        protocol=protocol,
        topology=topology,
        topology_params=params,
        scheduler="central",
        scheduler_params={"enabled_only": True},
        seed=1,
        engine=engine,
        metrics=metrics,
    )


def time_stepping(sim, budget_s: float) -> float:
    """Step ``sim`` for ~budget_s of wall time; returns steps/sec."""
    sim.step()  # warm caches outside the timed window
    steps = 0
    t0 = time.perf_counter()
    while True:
        sim.step()
        steps += 1
        elapsed = time.perf_counter() - t0
        if elapsed >= budget_s:
            return steps / elapsed


def steps_per_sec(spec: ExperimentSpec, budget_s: float) -> float:
    """Run ``spec``'s simulator for ~budget_s of wall time; steps/sec."""
    return time_stepping(spec.build_simulator(), budget_s)


def hot_loop_sims(n: int) -> Dict[str, Simulator]:
    """The acceptance pair: 10k synchronous COLORING, baseline vs flat.

    ``baseline`` preserves the pre-flat (PR 2) step loop — legacy
    dict-of-dicts state, per-activation context allocation, full
    per-step records; ``flat_aggregate`` is the shipped default backend
    under the aggregate tier.  Both replay the same seed.
    """
    def build(state, metrics):
        spec = ExperimentSpec(
            protocol="coloring", topology="ring", topology_params={"n": n},
            scheduler="synchronous", seed=1,
        )
        network = spec.build_network()
        return Simulator(
            spec.build_protocol(network), network,
            scheduler=spec.build_scheduler(network), seed=1,
            metrics=metrics, state=state,
        )

    return {
        "baseline": build("legacy", "full"),
        "flat_full": build("flat", "full"),
        "flat_aggregate": build("flat", "aggregate"),
    }


def measure_hot_loop(n: int, budget_s: float) -> Dict[str, float]:
    """Steps/sec of the acceptance pair plus the resulting speedups."""
    rates = {
        label: time_stepping(sim, budget_s)
        for label, sim in hot_loop_sims(n).items()
    }
    rates["speedup_aggregate"] = rates["flat_aggregate"] / rates["baseline"]
    rates["speedup_full"] = rates["flat_full"] / rates["baseline"]
    return rates


def measure_grid(n: int, budget_s: float,
                 tiers: Tuple[str, ...] = TIERS) -> List[Dict]:
    """Steps/sec per topology × protocol × engine × metrics tier."""
    rows = []
    for topo_name, params in topologies(n):
        for protocol in PROTOCOLS:
            for engine in ENGINES:
                for metrics in tiers:
                    rate = steps_per_sec(
                        build_spec(protocol, topo_name, params, engine,
                                   metrics),
                        budget_s,
                    )
                    rows.append({
                        "topology": topo_name,
                        "protocol": protocol,
                        "engine": engine,
                        "metrics": metrics,
                        "steps_per_sec": round(rate, 2),
                    })
    return rows


def scenario_sims(n: int):
    """The scenario gate pair: 10k synchronous COLORING, plain vs the
    canned churn+recovery scenario (corruption every period, one safe
    topology mutation cycling through all four churn operations,
    recovery cycles timed).  Both sides come from the spec layer, so
    the bench measures exactly what spec-driven scenario runs pay."""
    spec = ExperimentSpec(
        protocol="coloring", topology="ring", topology_params={"n": n},
        scheduler="synchronous", seed=1, metrics="aggregate",
    )
    churned = spec.variant(
        scenario="churn",
        scenario_params={"period_rounds": 10, "fraction": 0.05, "degree": 2},
    )
    return {
        "plain": spec.build_simulator(),
        "scenario": churned.build_simulator(),
    }


def measure_scenario(n: int, budget_s: float) -> Dict[str, float]:
    """Steps/sec of the plain vs churn+recovery pair plus the ratio and
    the number of scenario events that actually fired."""
    sims = scenario_sims(n)
    rates = {
        label: time_stepping(sim, budget_s) for label, sim in sims.items()
    }
    runtime = sims["scenario"].scenario_runtime
    metrics = sims["scenario"].metrics
    return {
        "plain": rates["plain"],
        "scenario": rates["scenario"],
        "ratio": rates["scenario"] / rates["plain"],
        "events_applied": float(len(runtime.applied)),
        "faults_injected": float(metrics.faults_injected),
        "recoveries_timed": float(len(metrics.recovery_rounds)),
    }


def write_bench4_json(mode: str, n: int, budget_s: float,
                      scenario: Dict[str, float]) -> None:
    """Merge the scenario case into ``BENCH_4.json`` (repo root),
    keyed by mode exactly like :func:`write_bench_json`."""
    payload: Dict = {}
    if BENCH4_JSON.exists():
        try:
            payload = json.loads(BENCH4_JSON.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            payload = {}
    payload[mode] = {
        "n": n,
        "budget_s": budget_s,
        "churn_recovery": {k: round(v, 3) for k, v in scenario.items()},
    }
    BENCH4_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def identical_prefix(protocol: str, topology: str, params: Dict,
                     steps: int = 50) -> bool:
    """Cheap determinism guard: all engines replay the same steps."""
    runs = []
    for engine in ("incremental", "scan", "batch"):
        sim = build_spec(protocol, topology, params, engine).build_simulator()
        runs.append([sim.step() for _ in range(steps)])
    return all(run == runs[0] for run in runs[1:])


def measure_batch(n: int, budget_s: float) -> Dict[str, float]:
    """The PR-7 acceptance pair: synchronous COLORING at ``n``
    processes, aggregate tier, scalar incremental loop vs the columnar
    batch engine.  Returns both rates plus the speedup."""
    def build(engine):
        return ExperimentSpec(
            protocol="coloring", topology="ring", topology_params={"n": n},
            scheduler="synchronous", seed=1, engine=engine,
            metrics="aggregate",
        ).build_simulator()

    rates = {
        engine: time_stepping(build(engine), budget_s)
        for engine in ("incremental", "batch")
    }
    rates["speedup"] = rates["batch"] / rates["incremental"]
    return rates


def time_stepping_resident(sim, budget_s: float, chunk: int = 64) -> float:
    """Fused-driver analogue of :func:`time_stepping`: run the resident
    engine in ``chunk``-step fused spans for ~budget_s; steps/sec."""
    sim.run_resident(steps=1)  # warm caches outside the timed window
    steps = 0
    t0 = time.perf_counter()
    while True:
        sim.run_resident(steps=chunk)
        steps += chunk
        elapsed = time.perf_counter() - t0
        if elapsed >= budget_s:
            return steps / elapsed


def measure_resident(n: int, budget_s: float) -> Dict[str, float]:
    """The PR-8 acceptance pair: synchronous COLORING at ``n``
    processes, aggregate tier, per-step batch engine vs the fused
    column-resident driver.  Returns both rates plus the speedup."""
    def build(engine):
        return ExperimentSpec(
            protocol="coloring", topology="ring", topology_params={"n": n},
            scheduler="synchronous", seed=1, engine=engine,
            metrics="aggregate",
        ).build_simulator()

    resident_sim = build("batch-resident")
    rates = {
        "backend": resident_sim.engine.backend_name,
        "batch": time_stepping(build("batch"), budget_s),
        "resident": time_stepping_resident(resident_sim, budget_s),
    }
    rates["speedup"] = rates["resident"] / rates["batch"]
    return rates


def measure_obs_overhead(n: int, budget_s: float) -> Dict[str, float]:
    """Fused resident stepping with the telemetry registry off vs on.

    Same workload as :func:`measure_resident`'s resident arm; the
    registry state is restored (and the instruments dropped) on exit so
    the measurement never leaks into other cases.
    """
    from repro.obs.registry import TELEMETRY

    def build():
        return ExperimentSpec(
            protocol="coloring", topology="ring", topology_params={"n": n},
            scheduler="synchronous", seed=1, engine="batch-resident",
            metrics="aggregate",
        ).build_simulator()

    was_enabled = TELEMETRY.enabled
    disabled = enabled = 0.0
    try:
        # Alternating best-of-3 pairs: the real per-span cost is far
        # below single-shot wall-clock jitter, so one measurement per
        # arm flakes.  Interleaving cancels machine drift; max-of-k is
        # the noise-robust throughput estimate.
        for _ in range(3):
            TELEMETRY.disable()
            disabled = max(disabled,
                           time_stepping_resident(build(), budget_s))
            TELEMETRY.enable()
            enabled = max(enabled,
                          time_stepping_resident(build(), budget_s))
    finally:
        TELEMETRY.enabled = was_enabled
        TELEMETRY.reset()
    return {
        "disabled": disabled,
        "enabled": enabled,
        "enabled_overhead": 1.0 - enabled / disabled,
    }


def resident_tiny_floor(rates: Dict[str, float]) -> float:
    """The --tiny resident gate, by column backend (see the constants)."""
    if rates.get("backend") == "numpy":
        return MIN_RESIDENT_SPEEDUP_TINY
    return MIN_RESIDENT_SPEEDUP_TINY_PYTHON


def measure_million_resident(n: int = MILLION_N,
                             steps: int = MILLION_STEPS) -> Dict[str, float]:
    """The 1M-process sparse tier under the resident engine.

    Splits the build cost so each gate stands alone: ``build_s`` is the
    whole simulator construction (graph sample, configuration draw,
    engine activation), ``store_build_s`` re-times just the
    ColumnStore assembly (the < 10s gate), and ``steps_per_sec`` is
    the fused driver's synchronous rate (the ≥ 5 steps/s gate).
    """
    import gc

    from repro.core.columns import ColumnStore

    t0 = time.perf_counter()
    sim = ExperimentSpec(
        protocol="coloring", topology="sparse",
        topology_params={"n": n, "avg_degree": 3.0, "seed": 7},
        scheduler="synchronous", seed=1, engine="batch-resident",
        metrics="aggregate",
    ).build_simulator()
    build_s = time.perf_counter() - t0
    # The simulator build leaves ~GBs of freshly allocated objects;
    # collect first so the store-build gate times the build, not a GC
    # pass that happens to land inside the window.
    gc.collect()
    t0 = time.perf_counter()
    store = ColumnStore.try_build(sim.network, sim.config, sim.engine.specs_of)
    store_build_s = time.perf_counter() - t0
    assert store is not None, "1M store build fell back"
    del store
    gc.collect()
    sim.run_resident(steps=1)  # warm outside the timed window
    t0 = time.perf_counter()
    sim.run_resident(steps=steps)
    elapsed = time.perf_counter() - t0
    rate = steps / elapsed
    return {
        "n": float(n),
        "steps_timed": float(steps),
        "build_s": build_s,
        "store_build_s": store_build_s,
        "steps_per_sec": rate,
        "activations_per_sec": rate * n,
    }


def write_bench6_json(mode: str, n: int, budget_s: float,
                      resident: Dict[str, float],
                      million: Dict[str, float] = None,
                      obs: Dict[str, float] = None) -> None:
    """Merge the resident case into ``BENCH_6.json`` (repo root), keyed
    by mode exactly like :func:`write_bench5_json`.  The 1M section
    carries its two gate thresholds next to the measured values so the
    artifact is self-describing."""
    payload: Dict = {}
    if BENCH6_JSON.exists():
        try:
            payload = json.loads(BENCH6_JSON.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            payload = {}
    section = {
        "n": n,
        "budget_s": budget_s,
        "resident_vs_batch": {
            k: round(v, 3) if isinstance(v, float) else v
            for k, v in resident.items()
        },
    }
    if obs is not None:
        section["telemetry_overhead"] = {
            k: round(v, 3) for k, v in obs.items()
        }
    if million is not None:
        section["million_sparse"] = {
            k: round(v, 3) for k, v in million.items()
        }
        section["million_gates"] = {
            "store_build_budget_s": MILLION_STORE_BUILD_BUDGET_S,
            "store_build_ok": million["store_build_s"]
            < MILLION_STORE_BUILD_BUDGET_S,
            "min_steps_per_sec": MILLION_MIN_STEPS_PER_SEC,
            "steps_per_sec_ok": million["steps_per_sec"]
            >= MILLION_MIN_STEPS_PER_SEC,
        }
    payload[mode] = section
    BENCH6_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def write_bench6_obs(mode: str, obs: Dict[str, float]) -> None:
    """Merge just the telemetry-overhead case into ``BENCH_6.json``,
    leaving whatever the resident case already recorded for ``mode``
    in place (the pytest cases run independently and in any order)."""
    payload: Dict = {}
    if BENCH6_JSON.exists():
        try:
            payload = json.loads(BENCH6_JSON.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            payload = {}
    section = payload.get(mode)
    if not isinstance(section, dict):
        section = {}
        payload[mode] = section
    section["telemetry_overhead"] = {
        k: round(v, 3) for k, v in obs.items()
    }
    BENCH6_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def measure_million(n: int = MILLION_N,
                    steps: int = MILLION_STEPS) -> Dict[str, float]:
    """The 1M-process sparse tier: batch-only synchronous COLORING.

    Every step activates all ``n`` processes, so the per-step rate is
    stable after very few steps; reports steps/sec and the derived
    process-activations/sec (the number the paper-scale claim is
    about).  Build time is reported separately — constructing the
    million-node sparse graph dominates wall time, not stepping.
    """
    t0 = time.perf_counter()
    sim = ExperimentSpec(
        protocol="coloring", topology="sparse",
        topology_params={"n": n, "avg_degree": 3.0, "seed": 7},
        scheduler="synchronous", seed=1, engine="batch",
        metrics="aggregate",
    ).build_simulator()
    build_s = time.perf_counter() - t0
    sim.step()  # warm the column store outside the timed window
    t0 = time.perf_counter()
    for _ in range(steps):
        sim.step()
    elapsed = time.perf_counter() - t0
    rate = steps / elapsed
    return {
        "n": float(n),
        "steps_timed": float(steps),
        "build_s": build_s,
        "steps_per_sec": rate,
        "activations_per_sec": rate * n,
    }


def write_bench5_json(mode: str, n: int, budget_s: float,
                      batch: Dict[str, float],
                      million: Dict[str, float] = None) -> None:
    """Merge the batch-engine case into ``BENCH_5.json`` (repo root),
    keyed by mode exactly like :func:`write_bench_json`."""
    payload: Dict = {}
    if BENCH5_JSON.exists():
        try:
            payload = json.loads(BENCH5_JSON.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            payload = {}
    section = {
        "n": n,
        "budget_s": budget_s,
        "batch_vs_incremental": {k: round(v, 3) for k, v in batch.items()},
    }
    if million is not None:
        section["million_sparse"] = {
            k: round(v, 3) for k, v in million.items()
        }
    payload[mode] = section
    BENCH5_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _speedup_rows(grid: List[Dict]) -> List[List]:
    """Fold the grid into incremental-vs-scan rows at the full tier."""
    by_cell = {
        (r["topology"], r["protocol"], r["engine"]): r["steps_per_sec"]
        for r in grid if r["metrics"] == "full"
    }
    rows = []
    for topo_name, _params in topologies(0):  # names only; n irrelevant
        for protocol in PROTOCOLS:
            fast = by_cell.get((topo_name, protocol, "incremental"))
            slow = by_cell.get((topo_name, protocol, "scan"))
            if fast is None or slow is None:
                continue
            rows.append([
                topo_name, protocol, f"{fast:,.0f}", f"{slow:,.0f}",
                fast / slow,
            ])
    return rows


def write_bench_json(mode: str, n: int, budget_s: float,
                     grid: List[Dict] = None,
                     hot_loop: Dict[str, float] = None) -> None:
    """Merge one results section into ``BENCH_3.json`` (repo root).

    Sections are keyed by ``mode`` (``"full"`` or ``"tiny"``) so CI
    smoke numbers coexist with scale-tier numbers instead of
    overwriting them.
    """
    payload: Dict = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            payload = {}
    section = payload.setdefault(mode, {})
    section["n"] = n
    section["budget_s"] = budget_s
    if grid is not None:
        section["grid"] = grid
    if hot_loop is not None:
        section["hot_loop"] = {
            k: round(v, 2) for k, v in hot_loop.items()
        }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _emit(rows: List[List], n: int) -> None:
    from conftest import print_table

    print_table(
        f"E10  engine throughput, n={n} (enabled-drawing central daemon)",
        ["topology", "protocol", "incremental steps/s", "scan steps/s",
         "speedup"],
        [row[:4] + [f"{row[4]:.1f}x"] for row in rows],
    )


# ----------------------------------------------------------------------
# Pytest entry points
# ----------------------------------------------------------------------
def test_engines_replay_identically(tiny):
    n = TINY_N if tiny else 600  # equivalence check needs steps, not scale
    for topo_name, params in topologies(n):
        assert identical_prefix("mis", topo_name, params), topo_name
    assert identical_prefix("coloring", "ring", {"n": n})
    assert identical_prefix("matching", "ring", {"n": n})


def test_engine_speedup_grid(tiny):
    n = TINY_N if tiny else FULL_N
    budget = TINY_BUDGET_S if tiny else FULL_BUDGET_S
    grid = measure_grid(n, budget)
    write_bench_json("tiny" if tiny else "full", n, budget, grid=grid)
    rows = _speedup_rows(grid)
    _emit(rows, n)
    assert all(speedup > 0 for *_front, speedup in rows)
    if not tiny:
        # The acceptance bar: >= 3x on the 10k ring under the central
        # daemon, for every protocol.
        ring_rows = [row for row in rows if row[0] == "ring"]
        assert ring_rows and all(row[4] >= MIN_SPEEDUP for row in ring_rows)


def test_flat_hot_loop_speedup(tiny):
    """PR-3 acceptance gate: flat+pooled+aggregate ≥3x the legacy loop.

    At --tiny sizes the gate loosens to a generous smoke floor: it must
    catch losing the flat rows or the context pool outright, without
    flaking on loaded CI runners.
    """
    n = TINY_N if tiny else FULL_N
    budget = TINY_BUDGET_S if tiny else FULL_BUDGET_S
    rates = measure_hot_loop(n, budget)
    write_bench_json("tiny" if tiny else "full", n, budget, hot_loop=rates)
    print(
        f"\nflat hot loop, n={n} (synchronous coloring): "
        f"baseline {rates['baseline']:,.1f} steps/s, "
        f"flat/full {rates['flat_full']:,.1f}, "
        f"flat/aggregate {rates['flat_aggregate']:,.1f} "
        f"({rates['speedup_aggregate']:.2f}x)"
    )
    floor = MIN_FLAT_SPEEDUP_TINY if tiny else MIN_FLAT_SPEEDUP
    assert rates["speedup_aggregate"] >= floor


def test_scenario_churn_recovery(tiny):
    """PR-4 gate: the churn+recovery scenario keeps a generous fraction
    of the plain hot-loop throughput, and its events actually fire.

    The scenario run pays for periodic corruption, four-operation
    topology churn (full protocol/engine/pool rebinds), and recovery
    timing; the floor only guards against wholesale regressions (e.g.
    scenario bookkeeping leaking into scenario-free steps).
    """
    n = TINY_N if tiny else FULL_N
    budget = TINY_BUDGET_S if tiny else FULL_BUDGET_S
    result = measure_scenario(n, budget)
    write_bench4_json("tiny" if tiny else "full", n, budget, result)
    print(
        f"\nchurn+recovery scenario, n={n} (synchronous coloring): "
        f"plain {result['plain']:,.1f} steps/s, "
        f"scenario {result['scenario']:,.1f} steps/s "
        f"({result['ratio']:.2f}x), "
        f"{result['events_applied']:.0f} events applied"
    )
    assert result["events_applied"] >= 1
    floor = MIN_SCENARIO_RATIO_TINY if tiny else MIN_SCENARIO_RATIO
    assert result["ratio"] >= floor


def test_batch_engine_speedup(tiny):
    """PR-7 gate: the columnar batch engine ≥5x the scalar incremental
    loop on 10k-node synchronous coloring (≥1.5x at smoke sizes), with
    the 1M-process sparse tier completing at full scale."""
    n = BATCH_TINY_N if tiny else FULL_N
    budget = TINY_BUDGET_S if tiny else FULL_BUDGET_S
    rates = measure_batch(n, budget)
    million = None if tiny else measure_million()
    write_bench5_json("tiny" if tiny else "full", n, budget, rates, million)
    print(
        f"\nbatch engine, n={n} (synchronous coloring, aggregate tier): "
        f"incremental {rates['incremental']:,.1f} steps/s, "
        f"batch {rates['batch']:,.1f} steps/s "
        f"({rates['speedup']:.2f}x)"
    )
    if million is not None:
        print(
            f"1M sparse tier: {million['steps_per_sec']:.2f} steps/s "
            f"({million['activations_per_sec']:,.0f} activations/s, "
            f"build {million['build_s']:.1f}s)"
        )
        assert million["steps_per_sec"] > 0
    floor = MIN_BATCH_SPEEDUP_TINY if tiny else MIN_BATCH_SPEEDUP
    assert rates["speedup"] >= floor


def test_resident_engine_speedup(tiny):
    """PR-8 gate: the fused resident driver ≥3x the per-step batch
    engine on 10k-node synchronous coloring (≥1.5x at smoke sizes); at
    full scale the 1M sparse tier must assemble its ColumnStore inside
    the 10s budget and sustain ≥5 fused steps/s — both gated
    separately."""
    n = BATCH_TINY_N if tiny else FULL_N
    budget = TINY_BUDGET_S if tiny else FULL_BUDGET_S
    rates = measure_resident(n, budget)
    million = None if tiny else measure_million_resident()
    write_bench6_json("tiny" if tiny else "full", n, budget, rates, million)
    print(
        f"\nresident driver, n={n} (synchronous coloring, aggregate tier): "
        f"batch {rates['batch']:,.1f} steps/s, "
        f"resident {rates['resident']:,.1f} steps/s "
        f"({rates['speedup']:.2f}x)"
    )
    if million is not None:
        print(
            f"1M sparse tier (resident): {million['steps_per_sec']:.2f} "
            f"steps/s ({million['activations_per_sec']:,.0f} activations/s, "
            f"build {million['build_s']:.1f}s, "
            f"store build {million['store_build_s']:.1f}s)"
        )
        assert million["store_build_s"] < MILLION_STORE_BUILD_BUDGET_S
        assert million["steps_per_sec"] >= MILLION_MIN_STEPS_PER_SEC
    floor = resident_tiny_floor(rates) if tiny else MIN_RESIDENT_SPEEDUP
    assert rates["speedup"] >= floor


def test_obs_overhead(tiny):
    """PR-10 gate: telemetry switched ON costs at most a few percent of
    fused resident throughput (the switched-OFF path — one branch per
    fused span — is covered by the BENCH_6 trajectory gate, whose
    resident rate now includes the guards)."""
    n = BATCH_TINY_N if tiny else FULL_N
    budget = TINY_BUDGET_S if tiny else FULL_BUDGET_S
    rates = measure_obs_overhead(n, budget)
    write_bench6_obs("tiny" if tiny else "full", rates)
    print(
        f"\ntelemetry overhead, n={n} (fused resident, aggregate tier): "
        f"disabled {rates['disabled']:,.1f} steps/s, "
        f"enabled {rates['enabled']:,.1f} steps/s "
        f"({rates['enabled_overhead']:.1%} overhead)"
    )
    ceiling = (MAX_OBS_ENABLED_OVERHEAD_TINY if tiny
               else MAX_OBS_ENABLED_OVERHEAD)
    assert rates["enabled_overhead"] <= ceiling


# ----------------------------------------------------------------------
# Script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="smoke sizes (CI)")
    parser.add_argument("--n", type=int, default=None,
                        help=f"network size (default {FULL_N}, "
                             f"or {TINY_N} with --tiny)")
    parser.add_argument("--budget", type=float, default=None,
                        help="seconds of stepping per (engine, cell)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing BENCH_3.json")
    parser.add_argument("--store", default=None,
                        help="also append this emission to a results "
                             "store's bench trajectory (repro compare "
                             "gates BENCH payloads against it)")
    parser.add_argument("--profile", default=None, metavar="PSTATS",
                        help="run the measurement pass under cProfile "
                             "and dump the stats to this path (inspect "
                             "with python -m pstats)")
    args = parser.parse_args(argv)

    n = args.n or (TINY_N if args.tiny else FULL_N)
    budget = args.budget or (TINY_BUDGET_S if args.tiny else FULL_BUDGET_S)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    grid = measure_grid(n, budget)
    hot = measure_hot_loop(n, budget)
    scenario = measure_scenario(n, budget)
    batch_n = BATCH_TINY_N if args.tiny else n
    batch = measure_batch(batch_n, budget)
    resident = measure_resident(batch_n, budget)
    obs = measure_obs_overhead(batch_n, budget)
    million = None if args.tiny else measure_million()
    million_res = None if args.tiny else measure_million_resident()
    if profiler is not None:
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(f"cProfile stats written to {args.profile}")
    mode = "tiny" if args.tiny else "full"
    if not args.no_json:
        write_bench_json(mode, n, budget, grid=grid, hot_loop=hot)
        write_bench4_json(mode, n, budget, scenario)
        write_bench5_json(mode, batch_n, budget, batch, million)
        write_bench6_json(mode, batch_n, budget, resident, million_res,
                          obs=obs)
    if args.store:
        from repro.results import ResultStore

        with ResultStore(args.store) as store:
            store.record_bench("BENCH_3", mode, {
                "n": n, "budget_s": budget, "grid": grid,
                "hot_loop": {k: round(v, 2) for k, v in hot.items()},
            })
            store.record_bench("BENCH_4", mode, {
                "n": n, "budget_s": budget,
                "churn_recovery": {k: round(v, 3)
                                   for k, v in scenario.items()},
            })
            bench5 = {
                "n": batch_n, "budget_s": budget,
                "batch_vs_incremental": {k: round(v, 3)
                                         for k, v in batch.items()},
            }
            if million is not None:
                bench5["million_sparse"] = {k: round(v, 3)
                                            for k, v in million.items()}
            store.record_bench("BENCH_5", mode, bench5)
            bench6 = {
                "n": batch_n, "budget_s": budget,
                "resident_vs_batch": {
                    k: round(v, 3) if isinstance(v, float) else v
                    for k, v in resident.items()
                },
            }
            bench6["telemetry_overhead"] = {k: round(v, 3)
                                            for k, v in obs.items()}
            if million_res is not None:
                bench6["million_sparse"] = {k: round(v, 3)
                                            for k, v in million_res.items()}
            store.record_bench("BENCH_6", mode, bench6)
        print(f"bench trajectories appended to {args.store}")
    print(f"engine grid at n={n}, {budget:.2f}s per cell:")
    for row in grid:
        print(f"  {row['topology']:8s} {row['protocol']:10s} "
              f"{row['engine']:11s} {row['metrics']:9s} "
              f"{row['steps_per_sec']:>12,.0f} steps/s")
    print(f"flat hot loop (synchronous coloring, n={n}):")
    print(f"  baseline (legacy state, full metrics) "
          f"{hot['baseline']:>12,.1f} steps/s")
    print(f"  flat state, full metrics              "
          f"{hot['flat_full']:>12,.1f} steps/s ({hot['speedup_full']:.2f}x)")
    print(f"  flat state, aggregate metrics         "
          f"{hot['flat_aggregate']:>12,.1f} steps/s "
          f"({hot['speedup_aggregate']:.2f}x)")
    ring_ok = all(
        r2 / r1 >= MIN_SPEEDUP
        for r1, r2 in [(
            next(r["steps_per_sec"] for r in grid
                 if r["topology"] == "ring" and r["protocol"] == proto
                 and r["engine"] == "scan" and r["metrics"] == "full"),
            next(r["steps_per_sec"] for r in grid
                 if r["topology"] == "ring" and r["protocol"] == proto
                 and r["engine"] == "incremental" and r["metrics"] == "full"),
        ) for proto in PROTOCOLS]
    )
    print(f"churn+recovery scenario (synchronous coloring, n={n}):")
    print(f"  plain                                 "
          f"{scenario['plain']:>12,.1f} steps/s")
    print(f"  churn scenario                        "
          f"{scenario['scenario']:>12,.1f} steps/s "
          f"({scenario['ratio']:.2f}x, "
          f"{scenario['events_applied']:.0f} events)")
    print(f"batch engine (synchronous coloring, n={batch_n}, aggregate):")
    print(f"  scalar incremental                    "
          f"{batch['incremental']:>12,.1f} steps/s")
    print(f"  columnar batch                        "
          f"{batch['batch']:>12,.1f} steps/s ({batch['speedup']:.2f}x)")
    if million is not None:
        print(f"  1M sparse tier (batch only)           "
              f"{million['steps_per_sec']:>12,.2f} steps/s "
              f"({million['activations_per_sec']:,.0f} activations/s)")
    print(f"resident driver (synchronous coloring, n={batch_n}, aggregate):")
    print(f"  per-step batch                        "
          f"{resident['batch']:>12,.1f} steps/s")
    print(f"  fused resident                        "
          f"{resident['resident']:>12,.1f} steps/s "
          f"({resident['speedup']:.2f}x)")
    if million_res is not None:
        print(f"  1M sparse tier (resident)             "
              f"{million_res['steps_per_sec']:>12,.2f} steps/s "
              f"(build {million_res['build_s']:.1f}s, "
              f"store build {million_res['store_build_s']:.1f}s)")
    print(f"telemetry overhead (fused resident, n={batch_n}):")
    print(f"  registry off                          "
          f"{obs['disabled']:>12,.1f} steps/s")
    print(f"  registry on                           "
          f"{obs['enabled']:>12,.1f} steps/s "
          f"({obs['enabled_overhead']:.1%} overhead)")
    flat_ok = hot["speedup_aggregate"] >= (
        MIN_FLAT_SPEEDUP_TINY if args.tiny else MIN_FLAT_SPEEDUP
    )
    scenario_ok = scenario["ratio"] >= (
        MIN_SCENARIO_RATIO_TINY if args.tiny else MIN_SCENARIO_RATIO
    ) and scenario["events_applied"] >= 1
    batch_ok = batch["speedup"] >= (
        MIN_BATCH_SPEEDUP_TINY if args.tiny else MIN_BATCH_SPEEDUP
    )
    resident_ok = resident["speedup"] >= (
        resident_tiny_floor(resident) if args.tiny else MIN_RESIDENT_SPEEDUP
    )
    if million_res is not None:
        resident_ok = (
            resident_ok
            and million_res["store_build_s"] < MILLION_STORE_BUILD_BUDGET_S
            and million_res["steps_per_sec"] >= MILLION_MIN_STEPS_PER_SEC
        )
    obs_ok = obs["enabled_overhead"] <= (
        MAX_OBS_ENABLED_OVERHEAD_TINY if args.tiny
        else MAX_OBS_ENABLED_OVERHEAD
    )
    if not args.tiny and not ring_ok:
        print(f"FAIL: ring speedup below the {MIN_SPEEDUP}x floor")
        return 1
    if not flat_ok:
        print("FAIL: flat hot loop below its speedup floor")
        return 1
    if not scenario_ok:
        print("FAIL: churn+recovery scenario below its throughput floor")
        return 1
    if not batch_ok:
        print("FAIL: batch engine below its speedup floor")
        return 1
    if not resident_ok:
        print("FAIL: resident driver below its speedup floor or 1M gates")
        return 1
    if not obs_ok:
        print("FAIL: enabled-telemetry overhead above its ceiling")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
