"""E9/E10/E11/E12 — substrates, convergence internals, transformer,
and simulator scalability.

* E9: Theorem 4 — color orientations are dags (checked across random
  graphs) and COLORING's output is a valid identifier substrate.
* E10: convergence internals — Lemma 1 closure, Lemma 8 monotonicity,
  Lemma 7's pointer invariant, timed.
* E11: the §6 transformer prototype stabilizes and stays 1-efficient.
* E12: simulator throughput (steps/second) as n grows.
"""

import pytest

from repro import Simulator, random_connected
from repro.graphs import greedy_coloring, verify_theorem4
from repro.predicates import coloring_predicate, married_processes
from repro.protocols import (
    ColoringProtocol,
    MatchingProtocol,
    colors_from_coloring_protocol,
)
from repro.transformer import coloring_spec, independence_spec, make_one_efficient

from conftest import print_table


# ----------------------------------------------------------------------
# E9 — Theorem 4 substrate
# ----------------------------------------------------------------------
def test_theorem4_orientation(benchmark):
    nets = [random_connected(30, 0.15, seed=s) for s in range(6)]

    def check_all():
        return all(verify_theorem4(net, greedy_coloring(net)) for net in nets)

    assert benchmark(check_all)


def test_coloring_protocol_as_substrate(benchmark):
    net = random_connected(24, 0.18, seed=9)

    def pipeline():
        stage = colors_from_coloring_protocol(net, seed=3)
        return verify_theorem4(net, stage.colors)

    assert benchmark(pipeline)


# ----------------------------------------------------------------------
# E10 — convergence internals
# ----------------------------------------------------------------------
def test_lemma1_closure(benchmark):
    net = random_connected(20, 0.2, seed=4)
    proto = ColoringProtocol.for_network(net)

    def run():
        sim = Simulator(proto, net, seed=8)
        sim.run_until_legitimate(max_rounds=50_000)
        for _ in range(60):
            sim.step()
            if not coloring_predicate(net, sim.config):
                return False
        return True

    assert benchmark(run)


def test_lemma8_married_monotone(benchmark):
    net = random_connected(20, 0.2, seed=4)
    colors = greedy_coloring(net)

    def run():
        sim = Simulator(MatchingProtocol(net, colors), net, seed=8)
        sim.run_rounds(1)
        prev = married_processes(net, sim.config)
        for _ in range(150):
            sim.step()
            now = married_processes(net, sim.config)
            if not prev <= now:
                return False
            prev = now
        return True

    assert benchmark(run)


def test_lemma7_pointer_invariant(benchmark):
    net = random_connected(20, 0.2, seed=4)
    colors = greedy_coloring(net)

    def run():
        sim = Simulator(MatchingProtocol(net, colors), net, seed=8)
        sim.run_rounds(1)
        for _ in range(120):
            sim.step()
            for p in net.processes:
                if sim.config.get(p, "PR") not in (0, sim.config.get(p, "cur")):
                    return False
        return True

    assert benchmark(run)


# ----------------------------------------------------------------------
# E11 — transformer prototype
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec_factory,label",
    [
        (lambda net: coloring_spec(net.max_degree + 1), "coloring"),
        (lambda net: independence_spec(), "independence"),
    ],
    ids=["coloring", "independence"],
)
def test_transformer(benchmark, spec_factory, label):
    net = random_connected(20, 0.2, seed=12)

    def pipeline():
        proto = make_one_efficient(spec_factory(net))
        sim = Simulator(proto, net, seed=5)
        report = sim.run_until_silent(max_rounds=50_000)
        return report, sim.metrics.observed_k_efficiency()

    report, keff = benchmark(pipeline)
    assert report.stabilized
    assert keff <= 1


# ----------------------------------------------------------------------
# E12 — simulator throughput
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [50, 100, 200], ids=["n50", "n100", "n200"])
def test_simulator_throughput(benchmark, n):
    net = random_connected(n, min(0.2, 6.0 / n), seed=n)
    proto = ColoringProtocol.for_network(net)
    sim = Simulator(proto, net, seed=1)

    def fifty_steps():
        sim.run_steps(50)

    benchmark(fifty_steps)
