"""E2 — Protocol MIS (Fig. 8, Theorem 5, Lemma 4).

Claims reproduced: MIS is 1-efficient, silent, converges within Δ·#C
rounds, and its silent configurations are maximal independent sets.

Experiments are declared through :mod:`repro.api` (names + params);
live networks are only materialized to evaluate the paper-side bound
Δ·#C and the MIS predicate.
"""

import pytest

from repro.analysis import mis_round_bound
from repro.api import Campaign, ExperimentSpec
from repro.graphs import color_count, greedy_coloring
from repro.predicates import dominators, is_maximal_independent_set

from conftest import print_table

FAMILIES = {
    "ring24": ("ring", {"n": 24}),
    "grid5x5": ("grid", {"rows": 5, "cols": 5}),
    "tree30": ("tree", {"n": 30, "seed": 2}),
    "gnp40": ("gnp", {"n": 40, "p": 0.12, "seed": 5}),
}


def _spec(label, seed=11):
    topology, params = FAMILIES[label]
    return ExperimentSpec(
        protocol="mis", topology=topology, topology_params=params, seed=seed,
    )


@pytest.mark.parametrize("label", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_mis_stabilization(benchmark, label):
    spec = _spec(label)
    net = spec.build_network()
    colors = greedy_coloring(net)

    def pipeline():
        sim = spec.build_simulator()
        report = sim.run_until_silent(max_rounds=50_000)
        return sim, report

    sim, report = benchmark(pipeline)
    assert report.stabilized
    assert sim.metrics.observed_k_efficiency() == 1
    assert is_maximal_independent_set(net, dominators(net, sim.config))
    assert report.rounds <= mis_round_bound(net, colors)


def test_mis_round_bound_table(benchmark):
    """Measured rounds vs Lemma 4's Δ·#C across families and seeds."""

    def sweep():
        outcome = Campaign.grid(
            protocols=["mis"],
            topologies=[FAMILIES[label] for label in sorted(FAMILIES)],
            seeds=range(8),
        ).run()
        rows = []
        for label in sorted(FAMILIES):
            topology, params = FAMILIES[label]
            net = ExperimentSpec(
                protocol="mis", topology=topology, topology_params=params,
            ).build_network()
            colors = greedy_coloring(net)
            bound = mis_round_bound(net, colors)
            worst = max(
                r.rounds for s, r in outcome
                if (s.topology, s.topology_params) == (topology, params)
            )
            rows.append(
                [label, net.n, net.max_degree, color_count(colors), worst,
                 bound, worst <= bound]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E2  MIS: worst measured rounds vs Lemma 4 bound Δ·#C",
        ["family", "n", "Δ", "#C", "max rounds", "Δ·#C", "within"],
        rows,
    )
    assert all(row[-1] for row in rows)
