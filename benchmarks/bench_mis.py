"""E2 — Protocol MIS (Fig. 8, Theorem 5, Lemma 4).

Claims reproduced: MIS is 1-efficient, silent, converges within Δ·#C
rounds, and its silent configurations are maximal independent sets.
"""

import pytest

from repro import Simulator, random_connected, ring
from repro.analysis import mis_round_bound
from repro.graphs import color_count, greedy_coloring, grid, random_tree
from repro.predicates import dominators, is_maximal_independent_set
from repro.protocols import MISProtocol

from conftest import print_table

FAMILIES = {
    "ring24": lambda: ring(24),
    "grid5x5": lambda: grid(5, 5),
    "tree30": lambda: random_tree(30, seed=2),
    "gnp40": lambda: random_connected(40, 0.12, seed=5),
}


@pytest.mark.parametrize("label", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_mis_stabilization(benchmark, label):
    net = FAMILIES[label]()
    colors = greedy_coloring(net)

    def pipeline():
        proto = MISProtocol(net, colors)
        sim = Simulator(proto, net, seed=11)
        report = sim.run_until_silent(max_rounds=50_000)
        return sim, report

    sim, report = benchmark(pipeline)
    assert report.stabilized
    assert sim.metrics.observed_k_efficiency() == 1
    assert is_maximal_independent_set(net, dominators(net, sim.config))
    assert report.rounds <= mis_round_bound(net, colors)


def test_mis_round_bound_table(benchmark):
    """Measured rounds vs Lemma 4's Δ·#C across families and seeds."""

    def sweep():
        rows = []
        for label in sorted(FAMILIES):
            net = FAMILIES[label]()
            colors = greedy_coloring(net)
            bound = mis_round_bound(net, colors)
            worst = 0
            for seed in range(8):
                sim = Simulator(MISProtocol(net, colors), net, seed=seed)
                report = sim.run_until_silent(max_rounds=50_000)
                worst = max(worst, report.rounds)
            rows.append(
                [label, net.n, net.max_degree, color_count(colors), worst, bound,
                 worst <= bound]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E2  MIS: worst measured rounds vs Lemma 4 bound Δ·#C",
        ["family", "n", "Δ", "#C", "max rounds", "Δ·#C", "within"],
        rows,
    )
    assert all(row[-1] for row in rows)
