"""Ablations over the design choices DESIGN.md calls out.

* k-efficiency spectrum — convergence time vs per-step cost for the
  window-scanning coloring at k = 1 … Δ (the trade the paper's
  Definition 4 makes measurable).
* palette size — COLORING with Δ+1 vs larger palettes (redraw collisions
  vs state size).
* scheduler — the same protocol under every daemon family.
* fault recovery — rounds to re-stabilize vs fraction of corrupted
  processes (the operational payoff of self-stabilization).
"""

import random

import pytest

from repro import Simulator, random_connected
from repro.analysis import compare_schedulers, run_convergence_study
from repro.core.scheduler import (
    BoundedFairScheduler,
    CentralScheduler,
    RandomSubsetScheduler,
    RoundRobinScheduler,
    SynchronousScheduler,
)
from repro.faults import corrupt_fraction, measure_recovery
from repro.analysis import search_worst_case
from repro.graphs import greedy_coloring
from repro.protocols import (
    ColoringProtocol,
    MISProtocol,
    WindowColoringProtocol,
    WindowMISProtocol,
)

from conftest import print_table


def test_k_efficiency_spectrum(benchmark):
    """Convergence rounds and bits/step along k = 1..Δ."""
    net = random_connected(24, 0.25, seed=7)
    delta = net.max_degree
    ks = sorted({1, 2, max(1, delta // 2), delta})

    def sweep():
        rows = []
        for k in ks:
            rounds = []
            bits = 0.0
            for seed in range(6):
                proto = WindowColoringProtocol.for_network(net, k)
                sim = Simulator(proto, net, seed=seed)
                report = sim.run_until_silent(max_rounds=50_000)
                rounds.append(report.rounds)
                bits = max(bits, sim.metrics.max_bits_in_step)
            rows.append([k, sum(rounds) / len(rounds), max(rounds),
                         f"{bits:.2f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"ablation: k-efficiency spectrum (Δ = {delta}); "
        "rounds shrink as k grows, bits/step grow",
        ["k", "mean rounds", "max rounds", "max bits/step"],
        rows,
    )
    # Shape check: the Δ-window never converges slower than the
    # 1-window on average, and always reads more bits per step.
    assert float(rows[-1][3]) >= float(rows[0][3])


def test_palette_ablation(benchmark):
    """Δ+1 vs wider palettes: extra colors reduce redraw collisions."""
    net = random_connected(24, 0.25, seed=9)

    def sweep():
        rows = []
        for extra in (0, 2, 6):
            study = run_convergence_study(
                lambda extra=extra: ColoringProtocol.for_network(net, extra_colors=extra),
                net,
                seeds=range(8),
            )
            rows.append([net.max_degree + 1 + extra, study.mean_rounds,
                         study.max_rounds])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "ablation: palette size vs convergence rounds",
        ["palette", "mean rounds", "max rounds"],
        rows,
    )


def test_scheduler_ablation(benchmark):
    """The same COLORING instance under every scheduler family."""
    net = random_connected(20, 0.25, seed=11)

    def sweep():
        results = compare_schedulers(
            lambda: ColoringProtocol.for_network(net),
            net,
            {
                "synchronous": SynchronousScheduler,
                "central": CentralScheduler,
                "random-subset": lambda: RandomSubsetScheduler(0.5),
                "round-robin": RoundRobinScheduler,
                "bounded-fair": lambda: BoundedFairScheduler(bound=16),
            },
            seeds=range(6),
        )
        return [
            [name, study.mean_rounds, study.max_rounds]
            for name, study in sorted(results.items())
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "ablation: scheduler family vs rounds to silence (COLORING)",
        ["scheduler", "mean rounds", "max rounds"],
        rows,
    )
    assert all(row[2] < 10_000 for row in rows)


def test_fault_recovery_scaling(benchmark):
    """Rounds to recover vs corrupted fraction."""
    net = random_connected(24, 0.25, seed=13)

    def sweep():
        rows = []
        for fraction in (0.1, 0.3, 0.6, 1.0):
            recoveries = []
            for seed in range(5):
                sim = Simulator(ColoringProtocol.for_network(net), net, seed=seed)
                report = measure_recovery(
                    sim,
                    lambda s, r, f=fraction: corrupt_fraction(s, f, r),
                    random.Random(seed * 71),
                )
                recoveries.append(report.rounds_to_recover)
            rows.append([f"{fraction:.0%}", sum(recoveries) / len(recoveries),
                         max(recoveries)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "ablation: corrupted fraction vs recovery rounds (COLORING)",
        ["corrupted", "mean recovery", "max recovery"],
        rows,
    )


def test_mis_window_spectrum(benchmark):
    """Deterministic analogue of the k spectrum: window MIS."""
    net = random_connected(20, 0.25, seed=17)
    colors = greedy_coloring(net)
    delta = net.max_degree
    ks = sorted({1, 2, delta})

    def sweep():
        rows = []
        for k in ks:
            rounds = []
            for seed in range(6):
                sim = Simulator(WindowMISProtocol(net, colors, k), net, seed=seed)
                rounds.append(sim.run_until_silent(max_rounds=50_000).rounds)
            rows.append([k, sum(rounds) / len(rounds), max(rounds)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"ablation: MIS window width (Δ = {delta}) vs rounds to silence",
        ["k", "mean rounds", "max rounds"],
        rows,
    )


def test_adversarial_search_vs_bounds(benchmark):
    """Hardest found instance vs the lemma bounds (bound slack probe)."""
    from repro.analysis import matching_round_bound, mis_round_bound
    from repro.protocols import MatchingProtocol

    net = random_connected(14, 0.3, seed=19)
    colors_ref = greedy_coloring(net)

    def sweep():
        mis = search_worst_case(
            lambda n: MISProtocol(n, greedy_coloring(n)), net, trials=15, seed=3
        )
        matching = search_worst_case(
            lambda n: MatchingProtocol(n, greedy_coloring(n)), net,
            trials=15, seed=3,
        )
        return [
            ["MIS", mis.worst_rounds, mis_round_bound(net, colors_ref)],
            ["MATCHING", matching.worst_rounds, matching_round_bound(net)],
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "ablation: adversarial search (ports × starts × schedules) vs bounds",
        ["protocol", "worst found rounds", "lemma bound"],
        rows,
    )
    assert all(row[1] <= row[2] for row in rows)
