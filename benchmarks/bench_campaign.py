"""E9 — Campaign runner throughput: serial vs process-pool.

Measures trials/sec of the declarative :class:`repro.api.Campaign`
executor on a protocols × topologies × seeds grid, serial and fanned
out over a process pool, so later performance PRs (sharding, caching,
multi-backend) have a baseline to beat.  Also pins the determinism
contract that makes fan-out safe: parallel results equal serial
results row-for-row.
"""

import os

from repro.api import Campaign

from conftest import print_table

GRID = dict(
    protocols=["coloring", "mis", "matching"],
    topologies=[
        ("ring", {"n": 16}),
        ("grid", {"rows": 4, "cols": 4}),
        ("gnp", {"n": 20, "p": 0.2, "seed": 1}),
    ],
    schedulers=["synchronous"],
    seeds=range(4),
)

WORKERS = min(4, os.cpu_count() or 1)


def test_campaign_serial_throughput(benchmark):
    campaign = Campaign.grid(**GRID)

    def run():
        return campaign.run(workers=0)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    assert outcome.executed == len(campaign)
    assert all(r.legitimate and r.silent for r in outcome.results)
    trials_per_sec = len(campaign) / benchmark.stats["mean"]
    print_table(
        "E9  campaign throughput (serial)",
        ["trials", "trials/sec"],
        [[len(campaign), f"{trials_per_sec:.1f}"]],
    )


def test_campaign_pool_throughput(benchmark):
    campaign = Campaign.grid(**GRID)

    def run():
        return campaign.run(workers=WORKERS)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    assert outcome.executed == len(campaign)
    assert all(r.legitimate and r.silent for r in outcome.results)
    trials_per_sec = len(campaign) / benchmark.stats["mean"]
    print_table(
        f"E9  campaign throughput (process pool, {WORKERS} workers)",
        ["trials", "trials/sec"],
        [[len(campaign), f"{trials_per_sec:.1f}"]],
    )


def test_campaign_parallel_matches_serial(benchmark):
    campaign = Campaign.grid(**GRID)
    serial = campaign.run(workers=0)

    def run():
        return campaign.run(workers=WORKERS)

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    assert parallel.results == serial.results
