"""E6 — Communication and space complexity (§3.2's worked examples).

Claims reproduced: in the stabilized phase the 1-efficient protocols
read one neighbor (log(Δ+1) bits for COLORING) per step while the
Δ-efficient baselines read the whole neighborhood (Δ·log(Δ+1) bits);
space complexity of COLORING is 2log(Δ+1)+log(δ.p).
"""

import pytest

from repro import Simulator, random_connected
from repro.analysis import (
    coloring_communication_bits,
    coloring_space_bits,
    measured_space_bits,
    traditional_coloring_communication_bits,
)
from repro.graphs import greedy_coloring
from repro.protocols import (
    ColoringProtocol,
    FullReadColoring,
    FullReadMIS,
    FullReadMatching,
    MISProtocol,
    MatchingProtocol,
)

from conftest import print_table


def stabilized_phase_cost(protocol, net, seed=9, extra_rounds=8):
    """Bits and reads per step after silence."""
    sim = Simulator(protocol, net, seed=seed)
    sim.run_until_silent(max_rounds=100_000)
    sim.metrics.max_bits_in_step = 0.0
    sim.metrics.max_reads_in_step = 0
    sim.run_rounds(extra_rounds)
    return sim.metrics.max_reads_in_step, sim.metrics.max_bits_in_step


def test_stabilized_phase_communication_table(benchmark):
    net = random_connected(24, 0.2, seed=6)
    colors = greedy_coloring(net)
    delta = net.max_degree
    pairs = [
        ("coloring", ColoringProtocol.for_network(net),
         FullReadColoring.for_network(net)),
        ("MIS", MISProtocol(net, colors), FullReadMIS(net, colors)),
        ("matching", MatchingProtocol(net, colors), FullReadMatching(net, colors)),
    ]

    def sweep():
        rows = []
        for problem, efficient, baseline in pairs:
            r1, b1 = stabilized_phase_cost(efficient, net)
            r2, b2 = stabilized_phase_cost(baseline, net)
            rows.append([problem, r1, f"{b1:.2f}", r2, f"{b2:.2f}",
                         f"{b2 / b1:.1f}x" if b1 else "-"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"E6  stabilized-phase cost per step (Δ = {net.max_degree}): "
        "1-efficient vs Δ-efficient",
        ["problem", "reads(1eff)", "bits(1eff)", "reads(Δeff)", "bits(Δeff)",
         "ratio"],
        rows,
    )
    # The paper's shape: 1 neighbor vs Δ neighbors, factor ≈ Δ in bits.
    for row in rows:
        assert row[1] == 1
        assert row[3] == delta


def test_coloring_bits_match_paper_formula(benchmark):
    net = random_connected(24, 0.2, seed=6)
    delta = net.max_degree

    def measure():
        return stabilized_phase_cost(ColoringProtocol.for_network(net), net)

    _reads, bits = benchmark(measure)
    assert bits == pytest.approx(coloring_communication_bits(delta))
    assert traditional_coloring_communication_bits(delta) == pytest.approx(
        delta * bits
    )


def test_coloring_space_formula(benchmark):
    """Definition 6 worked example: 2log(Δ+1)+log(δ.p) bits per process."""
    net = random_connected(24, 0.2, seed=6)
    proto = ColoringProtocol.for_network(net)

    def measure():
        return measured_space_bits(proto, net)

    report = benchmark(measure)
    delta = net.max_degree
    for p in net.processes:
        assert report.per_process_bits[p] == pytest.approx(
            coloring_space_bits(delta, net.degree(p))
        )
