"""E6 — Communication and space complexity (§3.2's worked examples).

Claims reproduced: in the stabilized phase the 1-efficient protocols
read one neighbor (log(Δ+1) bits for COLORING) per step while the
Δ-efficient baselines read the whole neighborhood (Δ·log(Δ+1) bits);
space complexity of COLORING is 2log(Δ+1)+log(δ.p).

Protocol/baseline pairs are resolved by registry name through
:mod:`repro.api`, so adding a protocol to the registry automatically
exposes it to this bench's machinery.
"""

import pytest

from repro.analysis import (
    coloring_communication_bits,
    coloring_space_bits,
    measured_space_bits,
    traditional_coloring_communication_bits,
)
from repro.api import ExperimentSpec, protocol_registry, topology_registry

from conftest import print_table

NET_SPEC = ("gnp", {"n": 24, "p": 0.2, "seed": 6})

#: problem label -> (1-efficient registry name, Δ-efficient registry name)
PAIRS = [
    ("coloring", "coloring", "coloring-full"),
    ("MIS", "mis", "mis-full"),
    ("matching", "matching", "matching-full"),
]


def stabilized_phase_cost(protocol_name, seed=9, extra_rounds=8):
    """Bits and reads per step after silence, for a registry protocol."""
    topology, params = NET_SPEC
    sim = ExperimentSpec(
        protocol=protocol_name, topology=topology, topology_params=params,
        seed=seed, max_rounds=100_000,
    ).build_simulator()
    sim.run_until_silent(max_rounds=100_000)
    sim.metrics.max_bits_in_step = 0.0
    sim.metrics.max_reads_in_step = 0
    sim.run_rounds(extra_rounds)
    return sim.metrics.max_reads_in_step, sim.metrics.max_bits_in_step


def test_stabilized_phase_communication_table(benchmark):
    net = topology_registry.build(NET_SPEC[0], **NET_SPEC[1])
    delta = net.max_degree

    def sweep():
        rows = []
        for problem, efficient, baseline in PAIRS:
            r1, b1 = stabilized_phase_cost(efficient)
            r2, b2 = stabilized_phase_cost(baseline)
            rows.append([problem, r1, f"{b1:.2f}", r2, f"{b2:.2f}",
                         f"{b2 / b1:.1f}x" if b1 else "-"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"E6  stabilized-phase cost per step (Δ = {delta}): "
        "1-efficient vs Δ-efficient",
        ["problem", "reads(1eff)", "bits(1eff)", "reads(Δeff)", "bits(Δeff)",
         "ratio"],
        rows,
    )
    # The paper's shape: 1 neighbor vs Δ neighbors, factor ≈ Δ in bits.
    for row in rows:
        assert row[1] == 1
        assert row[3] == delta


def test_coloring_bits_match_paper_formula(benchmark):
    net = topology_registry.build(NET_SPEC[0], **NET_SPEC[1])
    delta = net.max_degree

    def measure():
        return stabilized_phase_cost("coloring")

    _reads, bits = benchmark(measure)
    assert bits == pytest.approx(coloring_communication_bits(delta))
    assert traditional_coloring_communication_bits(delta) == pytest.approx(
        delta * bits
    )


def test_coloring_space_formula(benchmark):
    """Definition 6 worked example: 2log(Δ+1)+log(δ.p) bits per process."""
    net = topology_registry.build(NET_SPEC[0], **NET_SPEC[1])
    proto = protocol_registry.build("coloring", net)

    def measure():
        return measured_space_bits(proto, net)

    report = benchmark(measure)
    delta = net.max_degree
    for p in net.processes:
        assert report.per_process_bits[p] == pytest.approx(
            coloring_space_bits(delta, net.degree(p))
        )
