"""E3 — Protocol MATCHING (Fig. 10, Theorem 7, Lemma 9).

Claims reproduced: MATCHING is 1-efficient, silent, converges within
(Δ+1)·n+2 rounds, and silent configurations are maximal matchings of
size at least ⌈m/(2Δ−1)⌉.

Experiments are declared through :mod:`repro.api`; the matching-size
checks need the final configuration, so those trials materialize a
simulator from the spec instead of taking the ``TrialResult`` fast
path.
"""

import pytest

from repro.analysis import matching_round_bound, min_maximal_matching_size
from repro.api import ExperimentSpec
from repro.predicates import is_maximal_matching, matched_edges

from conftest import print_table

FAMILIES = {
    "ring24": ("ring", {"n": 24}),
    "grid5x5": ("grid", {"rows": 5, "cols": 5}),
    "tree30": ("tree", {"n": 30, "seed": 2}),
    "gnp40": ("gnp", {"n": 40, "p": 0.12, "seed": 5}),
}


def _spec(label, seed=11):
    topology, params = FAMILIES[label]
    return ExperimentSpec(
        protocol="matching", topology=topology, topology_params=params,
        seed=seed, max_rounds=100_000,
    )


@pytest.mark.parametrize("label", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_matching_stabilization(benchmark, label):
    spec = _spec(label)
    net = spec.build_network()

    def pipeline():
        sim = spec.build_simulator()
        report = sim.run_until_silent(max_rounds=spec.max_rounds)
        return sim, report

    sim, report = benchmark(pipeline)
    assert report.stabilized
    assert sim.metrics.observed_k_efficiency() == 1
    edges = matched_edges(net, sim.config)
    assert is_maximal_matching(net, edges)
    assert len(edges) >= min_maximal_matching_size(net)
    assert report.rounds <= matching_round_bound(net)


def test_matching_round_bound_table(benchmark):
    """Measured rounds vs Lemma 9's (Δ+1)n+2 across families and seeds."""

    def sweep():
        rows = []
        for label in sorted(FAMILIES):
            net = _spec(label).build_network()
            bound = matching_round_bound(net)
            worst = 0
            sizes = []
            for seed in range(8):
                sim = _spec(label, seed=seed).build_simulator()
                report = sim.run_until_silent(max_rounds=100_000)
                worst = max(worst, report.rounds)
                sizes.append(len(matched_edges(net, sim.config)))
            rows.append(
                [label, net.n, net.max_degree, worst, bound, worst <= bound,
                 min(sizes), min_maximal_matching_size(net)]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E3  MATCHING: worst rounds vs Lemma 9 bound (Δ+1)n+2; matching "
        "size vs Biedl bound ⌈m/(2Δ-1)⌉",
        ["family", "n", "Δ", "max rounds", "bound", "within",
         "min |M|", "⌈m/(2Δ-1)⌉"],
        rows,
    )
    assert all(row[5] for row in rows)
    assert all(row[6] >= row[7] for row in rows)
