"""E3 — Protocol MATCHING (Fig. 10, Theorem 7, Lemma 9).

Claims reproduced: MATCHING is 1-efficient, silent, converges within
(Δ+1)·n+2 rounds, and silent configurations are maximal matchings of
size at least ⌈m/(2Δ−1)⌉.
"""

import pytest

from repro import Simulator, random_connected, ring
from repro.analysis import matching_round_bound, min_maximal_matching_size
from repro.graphs import greedy_coloring, grid, random_tree
from repro.predicates import is_maximal_matching, matched_edges
from repro.protocols import MatchingProtocol

from conftest import print_table

FAMILIES = {
    "ring24": lambda: ring(24),
    "grid5x5": lambda: grid(5, 5),
    "tree30": lambda: random_tree(30, seed=2),
    "gnp40": lambda: random_connected(40, 0.12, seed=5),
}


@pytest.mark.parametrize("label", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_matching_stabilization(benchmark, label):
    net = FAMILIES[label]()
    colors = greedy_coloring(net)

    def pipeline():
        proto = MatchingProtocol(net, colors)
        sim = Simulator(proto, net, seed=11)
        report = sim.run_until_silent(max_rounds=100_000)
        return sim, report

    sim, report = benchmark(pipeline)
    assert report.stabilized
    assert sim.metrics.observed_k_efficiency() == 1
    edges = matched_edges(net, sim.config)
    assert is_maximal_matching(net, edges)
    assert len(edges) >= min_maximal_matching_size(net)
    assert report.rounds <= matching_round_bound(net)


def test_matching_round_bound_table(benchmark):
    """Measured rounds vs Lemma 9's (Δ+1)n+2 across families and seeds."""

    def sweep():
        rows = []
        for label in sorted(FAMILIES):
            net = FAMILIES[label]()
            colors = greedy_coloring(net)
            bound = matching_round_bound(net)
            worst = 0
            sizes = []
            for seed in range(8):
                sim = Simulator(MatchingProtocol(net, colors), net, seed=seed)
                report = sim.run_until_silent(max_rounds=100_000)
                worst = max(worst, report.rounds)
                sizes.append(len(matched_edges(net, sim.config)))
            rows.append(
                [label, net.n, net.max_degree, worst, bound, worst <= bound,
                 min(sizes), min_maximal_matching_size(net)]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E3  MATCHING: worst rounds vs Lemma 9 bound (Δ+1)n+2; matching "
        "size vs Biedl bound ⌈m/(2Δ-1)⌉",
        ["family", "n", "Δ", "max rounds", "bound", "within",
         "min |M|", "⌈m/(2Δ-1)⌉"],
        rows,
    )
    assert all(row[5] for row in rows)
    assert all(row[6] >= row[7] for row in rows)
