"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's claims (see DESIGN.md §3's
per-experiment index) and asserts the paper-vs-measured *shape* — who
wins, within which bound — while pytest-benchmark records the runtime
of the reproduced pipeline.
"""

from __future__ import annotations

import pytest


def print_table(title: str, headers, rows) -> None:
    """Emit a paper-vs-measured table into the captured bench output."""
    from repro.experiments import format_table

    print()
    print(format_table(headers, rows, title=title))


@pytest.fixture(scope="session")
def report_lines():
    """Accumulates human-readable result lines across benches."""
    lines: list = []
    yield lines
    if lines:
        print("\n=== paper-vs-measured summary ===")
        for line in lines:
            print(line)
