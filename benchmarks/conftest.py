"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's claims (see DESIGN.md §3's
per-experiment index) and asserts the paper-vs-measured *shape* — who
wins, within which bound — while pytest-benchmark records the runtime
of the reproduced pipeline.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--tiny",
        action="store_true",
        default=False,
        help="smoke mode: shrink networks and time budgets so a bench "
             "exercises its whole pipeline in seconds (used by CI)",
    )


@pytest.fixture
def tiny(request) -> bool:
    """True when the bench run should use smoke-test sizes (--tiny)."""
    return request.config.getoption("--tiny")


def print_table(title: str, headers, rows) -> None:
    """Emit a paper-vs-measured table into the captured bench output."""
    from repro.experiments import format_table

    print()
    print(format_table(headers, rows, title=title))


@pytest.fixture(scope="session")
def report_lines():
    """Accumulates human-readable result lines across benches."""
    lines: list = []
    yield lines
    if lines:
        print("\n=== paper-vs-measured summary ===")
        for line in lines:
            print(line)
