"""E7/E8 — The impossibility constructions (Theorems 1 and 2).

Claims reproduced: for the 1-stable strawman protocols, the paper's
splicing construction manufactures silent illegitimate configurations
on the chain, the Δ²+1 gadget, and the rooted dag-oriented network —
configurations from which the victim never recovers, while protocol
COLORING escapes the identical trap.
"""

import pytest

from repro.core import Configuration, Simulator
from repro.impossibility import (
    theorem1_gadget_demo,
    theorem1_overlay_demo,
    theorem1_splice_demo,
    theorem2_demo,
    theorem2_gadget_demo,
)
from repro.protocols import ColoringProtocol

from conftest import print_table

DEMOS = {
    "thm1-overlay": theorem1_overlay_demo,
    "thm1-splice": theorem1_splice_demo,
    "thm1-gadget-d3": lambda: theorem1_gadget_demo(3),
    "thm1-gadget-d4": lambda: theorem1_gadget_demo(4),
    "thm2-fig3": theorem2_demo,
    "thm2-gadget-d3": lambda: theorem2_gadget_demo(3),
}


@pytest.mark.parametrize("label", sorted(DEMOS), ids=sorted(DEMOS))
def test_construction(benchmark, label):
    def construct_and_verify():
        demo = DEMOS[label]()
        return demo, demo.verify(rounds=20, seed=2)

    demo, report = benchmark(construct_and_verify)
    assert report.demonstrates_impossibility


def test_impossibility_table(benchmark):
    def sweep():
        rows = []
        for label in sorted(DEMOS):
            demo = DEMOS[label]()
            report = demo.verify(rounds=20, seed=2)
            rows.append(
                [label, demo.network.n, str(demo.trap_edge), report.silent,
                 report.legitimate, report.demonstrates_impossibility]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E7/E8  impossibility traps: silent + illegitimate + frozen",
        ["construction", "n", "trap edge", "silent", "legitimate",
         "demonstrates"],
        rows,
    )
    assert all(r[-1] for r in rows)


def test_coloring_escapes_trap(benchmark):
    """The positive contrast: COLORING recovers from the same trap."""
    demo = theorem1_overlay_demo()
    protocol = ColoringProtocol(palette_size=3)
    config = Configuration(
        {p: {"C": demo.config.get(p, "C"), "cur": 1}
         for p in demo.network.processes}
    )

    def escape():
        sim = Simulator(protocol, demo.network, seed=13, config=config)
        return sim.run_until_silent(max_rounds=20_000)

    report = benchmark(escape)
    assert report.stabilized
