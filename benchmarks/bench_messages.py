"""Message-passing cost of the stabilized phase (the paper's motivation
made concrete).

The intro's complaint about classical self-stabilization: "information
about every participant has to be repetitively sent to every other
participant".  This bench prices the stabilized phase of each protocol
under a pull-register implementation and compares 1-efficient vs
Δ-efficient message rates, plus the push-with-heartbeat dual.
"""

import pytest

from repro import random_connected
from repro.graphs import greedy_coloring
from repro.mp import PullEmulator, PushAccountant
from repro.protocols import (
    ColoringProtocol,
    FullReadColoring,
    FullReadMIS,
    FullReadMatching,
    MISProtocol,
    MatchingProtocol,
)

from conftest import print_table


def steady_state_rate(protocol, net, rounds=8, seed=4):
    emu = PullEmulator(protocol, net, seed=seed)
    emu.run_until_silent(max_rounds=100_000)
    return emu.messages_per_round(rounds=rounds)


def test_pull_message_rates(benchmark):
    net = random_connected(20, 0.25, seed=6)
    colors = greedy_coloring(net)
    degree_sum = sum(net.degree(p) for p in net.processes)

    def sweep():
        rows = []
        for problem, eff, base in (
            ("coloring", ColoringProtocol.for_network(net),
             FullReadColoring.for_network(net)),
            ("MIS", MISProtocol(net, colors), FullReadMIS(net, colors)),
            ("matching", MatchingProtocol(net, colors),
             FullReadMatching(net, colors)),
        ):
            r_eff = steady_state_rate(eff, net)
            r_base = steady_state_rate(base, net)
            rows.append([problem, f"{r_eff:.0f}", f"{r_base:.0f}",
                         f"{r_base / r_eff:.1f}x"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"pull-register messages per synchronous round, stabilized phase "
        f"(n = {net.n}, Σδ = {degree_sum})",
        ["problem", "1-efficient", "Δ-efficient", "ratio"],
        rows,
    )
    # Shape: 1-efficient = 2n; Δ-efficient = 2·Σδ.
    assert float(rows[0][1]) == pytest.approx(2 * net.n)
    assert float(rows[0][2]) == pytest.approx(2 * degree_sum)


def test_push_refresh_rate(benchmark):
    """Push duals pay n·δ per refresh sweep regardless of activity."""
    net = random_connected(20, 0.25, seed=6)
    proto = ColoringProtocol.for_network(net)

    def measure():
        push = PushAccountant(proto, net, seed=4, refresh_period=5)
        push.sim.run_until_silent(max_rounds=100_000)
        push.stats.__init__()
        push.run_rounds(10)
        return push.stats.messages

    messages = benchmark(measure)
    degree_sum = sum(net.degree(p) for p in net.processes)
    assert messages % degree_sum == 0
