"""Regenerate EXPERIMENTS.md from live measurements.

Runs every experiment in DESIGN.md §3's index and writes the
paper-vs-measured record.  Usage::

    python benchmarks/generate_experiments_report.py [output_path]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import Simulator, random_connected, ring
from repro.analysis import (
    coloring_communication_bits,
    matching_round_bound,
    matching_stability_bound,
    measure_stability,
    min_maximal_matching_size,
    mis_round_bound,
    mis_stability_bound,
    run_convergence_study,
    traditional_coloring_communication_bits,
)
from repro.core import Simulator
from repro.experiments import format_markdown_table
from repro.graphs import (
    caterpillar,
    chain,
    clique,
    color_count,
    figure9_path,
    figure11_graph,
    greedy_coloring,
    grid,
    random_tree,
    verify_theorem4,
)
from repro.impossibility import (
    theorem1_gadget_demo,
    theorem1_overlay_demo,
    theorem1_splice_demo,
    theorem2_demo,
    theorem2_gadget_demo,
)
from repro.predicates import (
    dominators,
    is_maximal_independent_set,
    is_maximal_matching,
    matched_edges,
)
from repro.protocols import (
    ColoringProtocol,
    FullReadColoring,
    FullReadMIS,
    FullReadMatching,
    MISProtocol,
    MatchingProtocol,
)
from repro.transformer import coloring_spec, independence_spec, make_one_efficient

SEEDS = range(8)


def e1_coloring():
    rows = []
    for label, maker in (
        ("ring16", lambda: ring(16)),
        ("grid4x4", lambda: grid(4, 4)),
        ("clique8", lambda: clique(8)),
        ("gnp32", lambda: random_connected(32, 0.15, seed=3)),
    ):
        net = maker()
        study = run_convergence_study(
            lambda net=net: ColoringProtocol.for_network(net), net, SEEDS
        )
        keff = 0
        sim = Simulator(ColoringProtocol.for_network(net), net, seed=1)
        sim.run_until_silent(max_rounds=50_000)
        keff = sim.metrics.observed_k_efficiency()
        rows.append([label, net.n, net.max_degree, f"{study.mean_rounds:.1f}",
                     study.max_rounds, keff])
    return format_markdown_table(
        ["network", "n", "Δ", "mean rounds", "max rounds", "k-efficiency"], rows
    )


def e2_mis():
    rows = []
    for label, maker in (
        ("ring16", lambda: ring(16)),
        ("grid4x4", lambda: grid(4, 4)),
        ("tree24", lambda: random_tree(24, seed=2)),
        ("gnp32", lambda: random_connected(32, 0.15, seed=3)),
    ):
        net = maker()
        colors = greedy_coloring(net)
        worst = 0
        for seed in SEEDS:
            sim = Simulator(MISProtocol(net, colors), net, seed=seed)
            rep = sim.run_until_silent(max_rounds=50_000)
            assert is_maximal_independent_set(net, dominators(net, sim.config))
            worst = max(worst, rep.rounds)
        bound = mis_round_bound(net, colors)
        rows.append([label, net.n, net.max_degree, color_count(colors),
                     worst, bound, "yes" if worst <= bound else "NO"])
    return format_markdown_table(
        ["network", "n", "Δ", "#C", "max rounds", "Δ·#C (Lemma 4)", "within"],
        rows,
    )


def e3_matching():
    rows = []
    for label, maker in (
        ("ring16", lambda: ring(16)),
        ("grid4x4", lambda: grid(4, 4)),
        ("tree24", lambda: random_tree(24, seed=2)),
        ("gnp32", lambda: random_connected(32, 0.15, seed=3)),
    ):
        net = maker()
        colors = greedy_coloring(net)
        worst, min_size = 0, 10**9
        for seed in SEEDS:
            sim = Simulator(MatchingProtocol(net, colors), net, seed=seed)
            rep = sim.run_until_silent(max_rounds=100_000)
            edges = matched_edges(net, sim.config)
            assert is_maximal_matching(net, edges)
            worst = max(worst, rep.rounds)
            min_size = min(min_size, len(edges))
        bound = matching_round_bound(net)
        rows.append([label, net.n, net.max_degree, worst, bound,
                     min_size, min_maximal_matching_size(net)])
    return format_markdown_table(
        ["network", "n", "Δ", "max rounds", "(Δ+1)n+2 (Lemma 9)",
         "min |M|", "⌈m/(2Δ−1)⌉"],
        rows,
    )


def e4_mis_stability():
    rows = []
    for label, maker in (
        ("fig9-path7", lambda: figure9_path(7)),
        ("chain16", lambda: chain(16)),
        ("ring14", lambda: ring(14)),
        ("caterpillar6x2", lambda: caterpillar(6, 2)),
    ):
        net = maker()
        m = measure_stability(MISProtocol(net, greedy_coloring(net)), net,
                              seed=4, suffix_rounds=30)
        bound, exact = mis_stability_bound(net)
        rows.append([label, net.n, m.x, bound,
                     "exact" if exact else "heuristic",
                     "yes" if m.x >= bound else "NO"])
    return format_markdown_table(
        ["network", "n", "x measured", "⌊(L_max+1)/2⌋ (Thm 6)", "L_max",
         "holds"],
        rows,
    )


def e5_matching_stability():
    rows = []
    net_fig11, tight = figure11_graph()
    cases = (
        ("fig11 (Δ=4, m=14)", net_fig11),
        ("chain16", chain(16)),
        ("ring14", ring(14)),
    )
    for label, net in cases:
        m = measure_stability(MatchingProtocol(net, greedy_coloring(net)), net,
                              seed=4, suffix_rounds=35)
        bound = matching_stability_bound(net)
        rows.append([label, net.n, m.x, bound, "yes" if m.x >= bound else "NO"])
    rows.append(["fig11 tight matching", net_fig11.n, 2 * len(tight),
                 matching_stability_bound(net_fig11), "equality"])
    return format_markdown_table(
        ["network", "n", "x measured", "2⌈m/(2Δ−1)⌉ (Thm 8)", "holds"], rows
    )


def e6_communication():
    net = random_connected(24, 0.2, seed=6)
    colors = greedy_coloring(net)
    delta = net.max_degree

    def cost(protocol):
        sim = Simulator(protocol, net, seed=9)
        sim.run_until_silent(max_rounds=100_000)
        sim.metrics.max_bits_in_step = 0.0
        sim.metrics.max_reads_in_step = 0
        sim.run_rounds(8)
        return sim.metrics.max_reads_in_step, sim.metrics.max_bits_in_step

    rows = []
    for problem, eff, base in (
        ("coloring", ColoringProtocol.for_network(net),
         FullReadColoring.for_network(net)),
        ("MIS", MISProtocol(net, colors), FullReadMIS(net, colors)),
        ("matching", MatchingProtocol(net, colors),
         FullReadMatching(net, colors)),
    ):
        r1, b1 = cost(eff)
        r2, b2 = cost(base)
        rows.append([problem, r1, f"{b1:.2f}", r2, f"{b2:.2f}",
                     f"{b2 / b1:.1f}×"])
    table = format_markdown_table(
        ["problem", "reads (1-eff)", "bits (1-eff)", "reads (Δ-eff)",
         "bits (Δ-eff)", "ratio"],
        rows,
    )
    formulas = (
        f"\nPaper formulas at Δ = {delta}: COLORING reads log(Δ+1) = "
        f"{coloring_communication_bits(delta):.2f} bits/step vs the "
        f"traditional Δ·log(Δ+1) = "
        f"{traditional_coloring_communication_bits(delta):.2f}.\n"
    )
    return table + formulas


def e7_e8_impossibility():
    rows = []
    for label, fn in (
        ("Thm1 overlay (Fig 1d)", theorem1_overlay_demo),
        ("Thm1 splice (Fig 1c)", theorem1_splice_demo),
        ("Thm1 gadget Δ=3 (Fig 2)", lambda: theorem1_gadget_demo(3)),
        ("Thm1 gadget Δ=4", lambda: theorem1_gadget_demo(4)),
        ("Thm2 Fig 3", theorem2_demo),
        ("Thm2 gadget Δ=3 (Fig 6)", lambda: theorem2_gadget_demo(3)),
    ):
        demo = fn()
        report = demo.verify(rounds=20, seed=2)
        rows.append([label, demo.network.n, str(demo.trap_edge),
                     "yes" if report.silent else "NO",
                     "no" if not report.legitimate else "YES",
                     "yes" if report.demonstrates_impossibility else "NO"])
    return format_markdown_table(
        ["construction", "n", "trap edge", "silent", "legitimate",
         "demonstrates"],
        rows,
    )


def e9_theorem4():
    ok = all(
        verify_theorem4(random_connected(30, 0.15, seed=s),
                        greedy_coloring(random_connected(30, 0.15, seed=s)))
        for s in range(8)
    )
    return f"Color orientation acyclic on 8/8 random graphs: {'yes' if ok else 'NO'}.\n"


def e11_transformer():
    net = random_connected(20, 0.2, seed=12)
    rows = []
    for label, spec in (
        ("coloring", coloring_spec(net.max_degree + 1)),
        ("independence", independence_spec()),
    ):
        proto = make_one_efficient(spec)
        sim = Simulator(proto, net, seed=5)
        rep = sim.run_until_silent(max_rounds=50_000)
        rows.append([label, "yes" if rep.stabilized else "NO",
                     rep.rounds, sim.metrics.observed_k_efficiency()])
    return format_markdown_table(
        ["spec", "stabilized", "rounds", "k-efficiency"], rows
    )



def e13_messages():
    from repro.mp import PullEmulator

    net = random_connected(20, 0.25, seed=6)
    colors = greedy_coloring(net)
    degree_sum = sum(net.degree(p) for p in net.processes)
    rows = []
    for problem, eff, base in (
        ("coloring", ColoringProtocol.for_network(net),
         FullReadColoring.for_network(net)),
        ("MIS", MISProtocol(net, colors), FullReadMIS(net, colors)),
        ("matching", MatchingProtocol(net, colors),
         FullReadMatching(net, colors)),
    ):
        rates = []
        for proto in (eff, base):
            emu = PullEmulator(proto, net, seed=4)
            emu.run_until_silent(max_rounds=100_000)
            rates.append(emu.messages_per_round(rounds=8))
        rows.append([problem, f"{rates[0]:.0f}", f"{rates[1]:.0f}",
                     f"{rates[1] / rates[0]:.1f}×"])
    table = format_markdown_table(
        ["problem", "msgs/round (1-eff)", "msgs/round (Δ-eff)", "ratio"], rows
    )
    return (table + f"\n\nPull-register model, stabilized phase, n = {net.n}, "
            f"Σδ = {degree_sum}: 1-efficient protocols cost 2n messages per "
            f"round, Δ-efficient ones 2Σδ.\n")


HEADER = """\
# EXPERIMENTS — paper-vs-measured record

Generated by `python benchmarks/generate_experiments_report.py` (seeded,
reproducible).  Each section reproduces one artefact of
*Communication Efficiency in Self-Stabilizing Silent Protocols*
(Devismes, Masuzawa, Tixeuil; ICDCS 2009) per DESIGN.md §3's index.
The paper is theory — its "results" are theorems, protocol figures and
tight examples; reproduction means every measured quantity obeys the
claimed bound and every construction behaves as proved.  Absolute
round counts depend on our simulator's schedulers and are not claims
of the paper; the *bounds* and *shapes* are.

"""

SECTIONS = (
    ("E1 — Protocol COLORING (Fig. 7, Thm 3): 1-efficient, stabilizes w.p. 1",
     e1_coloring),
    ("E2 — Protocol MIS (Fig. 8, Thm 5, Lemma 4): silence within Δ·#C rounds",
     e2_mis),
    ("E3 — Protocol MATCHING (Fig. 10, Thm 7, Lemma 9): silence within (Δ+1)n+2 rounds",
     e3_matching),
    ("E4 — MIS ♦-(x,1)-stability (Thm 6, Fig. 9)", e4_mis_stability),
    ("E5 — MATCHING ♦-(x,1)-stability (Thm 8, Fig. 11)", e5_matching_stability),
    ("E6 — Communication complexity (§3.2 worked examples)", e6_communication),
    ("E7/E8 — Impossibility constructions (Thms 1–2, Figs. 1–6)",
     e7_e8_impossibility),
    ("E9 — Color orientation is a dag (Thm 4)", e9_theorem4),
    ("E11 — Local-checking → 1-efficient transformer (§6 open question)",
     e11_transformer),
    ("E13 — Message cost of the stabilized phase (pull-register model)",
     e13_messages),
)


def main(out_path: str) -> None:
    parts = [HEADER]
    for title, fn in SECTIONS:
        print(f"running: {title}")
        parts.append(f"## {title}\n\n{fn()}\n")
    parts.append(
        "## Verdict\n\n"
        "Every bound holds on every measured instance; both tight examples "
        "(Fig. 9 path, Fig. 11 graph) meet their bounds with the predicted "
        "values; all six impossibility traps are silent, illegitimate and "
        "frozen; the 1-efficient/Δ-efficient cost gap matches the paper's "
        "factor-Δ arithmetic.\n"
    )
    Path(out_path).write_text("\n".join(parts))
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md")
